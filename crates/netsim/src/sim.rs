//! The discrete-event simulator core.
//!
//! Events are processed in `(time, sequence)` order from a hierarchical
//! timer wheel (see [`crate::wheel`]), so two runs with the same topology,
//! hosts, and seed produce identical traces. Hosts interact only through
//! [`Ctx`] action buffers, which the simulator turns into routed packet
//! deliveries, ICMP errors, and timer callbacks — single callbacks or
//! paced batches that serve a whole probe burst from one queue event.

use crate::fault::{FaultPlan, FlowKey, FlowVerdict};
use crate::host::{Action, Ctx, Host, UdpSend};
use crate::packet::{Datagram, IcmpKind, IcmpMessage, QuotedDatagram};
use crate::pcap::PcapWriter;
use crate::routing::{RouteError, RouteResolver};
use crate::stats::{DropReason, SimStats};
use crate::time::{SimDuration, SimTime};
use crate::topology::{IpOwner, NodeId, Topology};
use crate::wheel::{Placement, TimerWheel};
use crate::wire;
use std::collections::HashMap;

/// Simulator configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Seed for seed-derived decisions. The fault plane salts its
    /// stateless per-flow hashes from it (unless the plan carries an
    /// explicit salt), so two runs with the same seed and plan replay the
    /// same fault pattern bit for bit.
    pub seed: u64,
    /// Fault injection plan (validated at installation).
    pub faults: FaultPlan,
    /// Hard ceiling on processed events, to catch runaway feedback loops
    /// (e.g. two forwarders pointed at each other).
    pub max_events: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0x0D15EA5E,
            faults: FaultPlan::none(),
            max_events: 200_000_000,
        }
    }
}

/// Payload-carrying variants are boxed so the queue moves 24-byte nodes
/// instead of whole packets. `TimerBatch` is the batched-pacing carrier:
/// one queue event that fires `count` evenly-strided timer callbacks.
#[derive(Debug)]
enum EventKind {
    Udp {
        node: NodeId,
        dgram: Box<Datagram>,
    },
    Icmp {
        node: NodeId,
        icmp: Box<IcmpMessage>,
    },
    Timer {
        node: NodeId,
        token: u64,
    },
    TimerBatch {
        node: NodeId,
        token: u64,
        count: u32,
        stride: SimDuration,
        token_step: u64,
    },
}

/// The discrete-event network simulator.
pub struct Simulator {
    topo: Topology,
    hosts: Vec<Option<Box<dyn Host>>>,
    queue: TimerWheel<EventKind>,
    now: SimTime,
    seq: u64,
    seed: u64,
    faults: FaultPlan,
    /// Cached `faults.is_quiet()` — the per-packet fast-path branch.
    faults_quiet: bool,
    max_events: u64,
    resolver: RouteResolver,
    stats: SimStats,
    taps: HashMap<NodeId, PcapWriter>,
    ip_ident: u16,
    /// Reusable action buffer cycled through every [`Ctx`]: taken before a
    /// handler runs, drained, and returned — one allocation for the whole
    /// simulation instead of one per event.
    action_pool: Vec<Action>,
}

impl Simulator {
    /// Create a simulator over a built topology.
    pub fn new(topo: Topology, config: SimConfig) -> Self {
        let n = topo.host_count();
        let mut hosts = Vec::with_capacity(n);
        hosts.resize_with(n, || None);
        let faults = config.faults.salted(config.seed);
        faults.assert_valid();
        let faults_quiet = faults.is_quiet();
        Simulator {
            topo,
            hosts,
            queue: TimerWheel::new(),
            now: SimTime::ZERO,
            seq: 0,
            seed: config.seed,
            faults,
            faults_quiet,
            max_events: config.max_events,
            resolver: RouteResolver::new(),
            stats: SimStats::default(),
            taps: HashMap::new(),
            ip_ident: 0,
            action_pool: Vec::new(),
        }
    }

    /// Attach protocol logic to a node. Replaces any previous host.
    pub fn install<H: Host>(&mut self, node: NodeId, host: H) {
        self.hosts[node.0 as usize] = Some(Box::new(host));
    }

    /// Restore the simulator to its pre-run state over the same topology:
    /// pending events, hosts, and taps are discarded; the clock, sequence
    /// counter, IP ident counter, and statistics rewind to zero; the RNG
    /// reseeds from `config`. Reinstalling the same hosts and scheduling
    /// the same bootstrap timers then reproduces a fresh run's event
    /// stream bit for bit — the reuse contract warm shard worlds rely on.
    ///
    /// The route resolver's caches survive (paths are a pure function of
    /// the immutable topology), so a reset world re-runs without
    /// re-materializing any hop list. Only `route_cache_hits`/`misses`
    /// differ from a cold run; event timing and content never do.
    pub fn reset(&mut self, config: &SimConfig) {
        self.queue.clear();
        for slot in &mut self.hosts {
            *slot = None;
        }
        self.taps.clear();
        self.now = SimTime::ZERO;
        self.seq = 0;
        self.ip_ident = 0;
        self.seed = config.seed;
        self.faults = config.faults.clone().salted(config.seed);
        self.faults.assert_valid();
        self.faults_quiet = self.faults.is_quiet();
        self.max_events = config.max_events;
        self.resolver.reset_counters();
        self.stats = SimStats::default();
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The topology under simulation.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Replace the fault-injection plan (takes effect for all packets
    /// sent after the call — lets experiments degrade an initially clean
    /// network). Accepts a bare [`crate::FaultConfig`] for uniform
    /// faults. A zero plan salt is filled from the simulator seed; the
    /// plan is validated loudly here, never clamped per decision.
    pub fn set_faults(&mut self, faults: impl Into<FaultPlan>) {
        let plan = faults.into().salted(self.seed);
        plan.assert_valid();
        self.faults_quiet = plan.is_quiet();
        self.faults = plan;
    }

    /// Whether the installed fault plan can actually touch packets.
    /// Experiments use this to pick fault-aware configurations (e.g.
    /// partition-invariant probe tuples) only when faults are live.
    pub fn faults_active(&self) -> bool {
        !self.faults_quiet
    }

    /// Enable pcap capture at `node` (everything it sends and receives).
    pub fn tap(&mut self, node: NodeId) {
        self.taps.entry(node).or_default();
    }

    /// Remove and return the pcap bytes captured at `node`.
    pub fn take_capture(&mut self, node: NodeId) -> Option<Vec<u8>> {
        self.taps.remove(&node).map(PcapWriter::finish)
    }

    /// Borrow a host's concrete type (e.g. to read scan results after a
    /// run).
    pub fn host_as<T: Host>(&self, node: NodeId) -> Option<&T> {
        self.hosts[node.0 as usize]
            .as_deref()
            .and_then(|h| h.as_any().downcast_ref())
    }

    /// Mutably borrow a host's concrete type.
    pub fn host_as_mut<T: Host>(&mut self, node: NodeId) -> Option<&mut T> {
        self.hosts[node.0 as usize]
            .as_deref_mut()
            .and_then(|h| h.as_any_mut().downcast_mut())
    }

    /// Schedule a timer on `node` from outside (bootstrap).
    pub fn schedule_timer(&mut self, node: NodeId, delay: SimDuration, token: u64) {
        let at = self.now + delay;
        self.push(at, EventKind::Timer { node, token });
    }

    /// Schedule a batch of `count` timer callbacks on `node` from outside
    /// (bootstrap): the `k`-th fires at `now + delay + k·stride` with token
    /// `token + k·token_step` (wrapping). Timing is identical to `count`
    /// [`Simulator::schedule_timer`] calls; the queue holds one event.
    pub fn schedule_timer_batch(
        &mut self,
        node: NodeId,
        delay: SimDuration,
        stride: SimDuration,
        count: u32,
        token: u64,
        token_step: u64,
    ) {
        if count == 0 {
            return;
        }
        let at = self.now + delay;
        self.push(
            at,
            EventKind::TimerBatch {
                node,
                token,
                count,
                stride,
                token_step,
            },
        );
    }

    fn push(&mut self, at: SimTime, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        match self.queue.push(at, seq, kind) {
            Placement::Wheel => self.stats.events_wheel_scheduled += 1,
            Placement::Heap => self.stats.events_heap_scheduled += 1,
        }
    }

    /// Run until the event queue drains or the event budget is exhausted.
    /// Returns `true` if the queue drained.
    pub fn run(&mut self) -> bool {
        self.run_until(SimTime(u64::MAX))
    }

    /// Run until `deadline` (events at exactly `deadline` are processed),
    /// the queue drains, or the budget is exhausted. Returns `true` if the
    /// queue drained or only events beyond the deadline remain.
    pub fn run_until(&mut self, deadline: SimTime) -> bool {
        loop {
            if self.stats.events_processed >= self.max_events {
                return false;
            }
            let Some((at, _seq, kind)) = self.queue.pop_at_or_before(deadline) else {
                return true;
            };
            self.now = at;
            self.stats.events_processed += 1;
            self.dispatch(kind, deadline);
        }
    }

    fn dispatch(&mut self, kind: EventKind, deadline: SimTime) {
        match kind {
            EventKind::Udp { node, dgram } => {
                self.stats.udp_delivered += 1;
                self.stats.udp_bytes_delivered += dgram.payload.len() as u64;
                self.capture_udp(node, &dgram);
                self.with_host(node, |host, ctx| host.on_datagram(ctx, *dgram));
            }
            EventKind::Icmp { node, icmp } => {
                self.stats.icmp_delivered += 1;
                self.capture_icmp(node, &icmp);
                self.with_host(node, |host, ctx| host.on_icmp(ctx, *icmp));
            }
            EventKind::Timer { node, token } => {
                self.stats.timers_fired += 1;
                self.with_host(node, |host, ctx| host.on_timer(ctx, token));
            }
            EventKind::TimerBatch {
                node,
                token,
                count,
                stride,
                token_step,
            } => {
                // One popped event serves the whole burst: the clock steps
                // through each callback's exact time, so everything a
                // handler observes (`ctx.now()`, send times, capture
                // timestamps) matches `count` individual timer events.
                // Responses landing mid-batch are processed right after
                // the batch — their own event times are unaffected.
                let base = self.now;
                for k in 0..u64::from(count) {
                    let at = SimTime(base.0.saturating_add(stride.0.saturating_mul(k)));
                    if at > deadline {
                        // Remainder outlives this run: requeue it as a
                        // batch based at its exact next callback time.
                        let left = count - k as u32;
                        self.push(
                            at,
                            EventKind::TimerBatch {
                                node,
                                token: token.wrapping_add(token_step.wrapping_mul(k)),
                                count: left,
                                stride,
                                token_step,
                            },
                        );
                        break;
                    }
                    self.stats.timers_fired += 1;
                    if k > 0 {
                        self.stats.timers_coalesced += 1;
                    }
                    self.now = at;
                    let tok = token.wrapping_add(token_step.wrapping_mul(k));
                    self.with_host(node, |host, ctx| host.on_timer(ctx, tok));
                }
            }
        }
    }

    /// Temporarily detach the host, run `f` with the pooled action buffer,
    /// reattach, then execute the buffered actions and return the buffer
    /// to the pool.
    fn with_host<F>(&mut self, node: NodeId, f: F)
    where
        F: FnOnce(&mut Box<dyn Host>, &mut Ctx<'_>),
    {
        let Some(mut host) = self.hosts[node.0 as usize].take() else {
            return; // hostless node: a traffic sink (e.g. the spoofed victim)
        };
        let mut ctx = Ctx {
            now: self.now,
            node,
            topo: &self.topo,
            actions: std::mem::take(&mut self.action_pool),
        };
        f(&mut host, &mut ctx);
        let mut actions = std::mem::take(&mut ctx.actions);
        drop(ctx);
        self.hosts[node.0 as usize] = Some(host);
        for action in actions.drain(..) {
            match action {
                Action::SendUdp { send, attempt } => self.process_send(node, send, attempt),
                Action::SetTimer { delay, token } => {
                    let at = self.now + delay;
                    self.push(at, EventKind::Timer { node, token });
                }
                Action::SetTimerBatch {
                    delay,
                    stride,
                    count,
                    token,
                    token_step,
                } => {
                    if count > 0 {
                        let at = self.now + delay;
                        self.push(
                            at,
                            EventKind::TimerBatch {
                                node,
                                token,
                                count,
                                stride,
                                token_step,
                            },
                        );
                    }
                }
                Action::SendPortUnreachable { original } => {
                    self.process_icmp_error(node, original, IcmpKind::PortUnreachable)
                }
                Action::SendTimeExceeded { original } => {
                    self.process_icmp_error(node, original, IcmpKind::TimeExceeded)
                }
            }
        }
        self.action_pool = actions;
    }

    fn process_send(&mut self, from: NodeId, send: UdpSend, attempt: u8) {
        let src = send.src.unwrap_or_else(|| self.topo.host_spec(from).ip);
        let spoofed = !self.topo.node_owns_ip(from, src);
        if spoofed {
            if self.topo.as_spec(self.topo.as_of_node(from)).sav_outbound {
                // BCP 38 in action: the spoofed relay never leaves the AS.
                self.stats.record_drop(DropReason::SavOutbound);
                return;
            }
            self.stats.spoofed_sent += 1;
        }
        let ttl = send.effective_ttl();
        self.stats.udp_sent += 1;
        if attempt > 0 {
            self.stats.retransmits_sent += 1;
        }

        let dgram_at_send = Datagram {
            src,
            dst: send.dst,
            src_port: send.src_port,
            dst_port: send.dst_port,
            ttl,
            payload: send.payload,
        };
        // A tap on the sender sees the packet as it leaves, whatever
        // happens to it afterwards (exactly like dumpcap on the scan host).
        self.capture_udp(from, &dgram_at_send);

        // The packet's complete fate is a stateless hash of its flow key
        // under the destination's effective fault profile — identical for
        // any shard count, event order, or warm rerun. Quiet plans pay
        // one boolean branch.
        let verdict = if self.faults_quiet {
            FlowVerdict::CLEAN
        } else {
            let payload: &[u8] = &dgram_at_send.payload;
            let txid = if payload.len() >= 2 {
                u16::from_be_bytes([payload[0], payload[1]])
            } else {
                0
            };
            let (country, kind) = match self.topo.as_of_ip(send.dst) {
                Some(as_id) => {
                    let spec = self.topo.as_spec(as_id);
                    (Some(spec.country), Some(spec.kind))
                }
                None => (None, None),
            };
            let key = FlowKey {
                src,
                dst: send.dst,
                src_port: send.src_port,
                txid,
                attempt,
            };
            self.faults.decide(&key, country, kind)
        };

        if verdict.drop {
            self.stats.record_drop(DropReason::Fault);
            return;
        }

        // Warm-cache resolves clone an `Arc<Path>` — hops are borrowed,
        // never rebuilt, which is what keeps the steady-state send path
        // free of per-packet hop-list allocations.
        let resolved = self.resolver.resolve(&self.topo, from, send.dst);
        self.stats.route_cache_hits = self.resolver.path_cache_hits();
        self.stats.route_cache_misses = self.resolver.path_cache_misses();
        let path = match resolved {
            Ok(p) => p,
            Err(RouteError::NoSuchHost) | Err(RouteError::RouterAddress) => {
                self.stats.record_drop(DropReason::NoSuchHost);
                return;
            }
            Err(RouteError::Unreachable) => {
                self.stats.record_drop(DropReason::NoRoute);
                return;
            }
        };

        if let Some(hop) = path.expiry_hop(ttl) {
            // TTL dies in transit: ICMP Time Exceeded from the router back
            // to the packet's *source address* — the original client for
            // spoofed relays, which is what DNSRoute++ exploits (§5).
            self.stats.record_drop(DropReason::TtlExpired);
            let icmp = IcmpMessage {
                from: hop.ip,
                to: src,
                kind: IcmpKind::TimeExceeded,
                quote: Some(QuotedDatagram {
                    src,
                    dst: send.dst,
                    src_port: send.src_port,
                    dst_port: send.dst_port,
                }),
            };
            let rtt = hop.latency + hop.latency;
            self.deliver_icmp(icmp, self.now + rtt);
            return;
        }

        if verdict.corrupt {
            // A bit flip in transit: the Internet checksum catches every
            // single-bit error, so the receiving stack drops the packet.
            self.stats.record_drop(DropReason::Corrupt);
            return;
        }

        let arrival_ttl = ttl - path.router_hops() as u8;
        let deliver_at = self.now + path.total_latency + verdict.jitter;
        let dgram = Datagram {
            ttl: arrival_ttl,
            ..dgram_at_send
        };
        if verdict.duplicate {
            self.stats.duplicates_injected += 1;
            // The duplicate shares the payload bytes (refcount bump, no
            // memcpy), exactly like a duplicated packet on the wire.
            self.push(
                deliver_at + verdict.duplicate_jitter + SimDuration::from_micros(1),
                EventKind::Udp {
                    node: path.dst_node,
                    dgram: Box::new(dgram.clone()),
                },
            );
        }
        self.push(
            deliver_at,
            EventKind::Udp {
                node: path.dst_node,
                dgram: Box::new(dgram),
            },
        );
    }

    /// Emit an ICMP error from `from` toward the source of `original`,
    /// quoting it. Used for both port-unreachable (closed port) and
    /// time-exceeded (transparent forwarder with exhausted relay TTL).
    fn process_icmp_error(&mut self, from: NodeId, original: Datagram, kind: IcmpKind) {
        let icmp = IcmpMessage {
            // Errors are sourced from the address the packet was sent to
            // when the node owns it (a middlebox serving a whole /24 must
            // answer from the probed address), else the primary address.
            from: if self.topo.node_owns_ip(from, original.dst) {
                original.dst
            } else {
                self.topo.host_spec(from).ip
            },
            to: original.src,
            kind,
            quote: Some(QuotedDatagram {
                src: original.src,
                dst: original.dst,
                src_port: original.src_port,
                dst_port: original.dst_port,
            }),
        };
        let resolved = self.resolver.resolve(&self.topo, from, original.src);
        self.stats.route_cache_hits = self.resolver.path_cache_hits();
        self.stats.route_cache_misses = self.resolver.path_cache_misses();
        let latency = match resolved {
            Ok(p) => p.total_latency,
            Err(_) => {
                self.stats.icmp_undeliverable += 1;
                return;
            }
        };
        self.deliver_icmp(icmp, self.now + latency);
    }

    fn deliver_icmp(&mut self, icmp: IcmpMessage, at: SimTime) {
        match self.topo.owner_of_ip(icmp.to) {
            Some(IpOwner::Host(node)) => {
                self.push(
                    at,
                    EventKind::Icmp {
                        node,
                        icmp: Box::new(icmp),
                    },
                );
            }
            _ => {
                // Errors toward spoofed/unassigned sources vanish, exactly
                // like on the real Internet.
                self.stats.icmp_undeliverable += 1;
            }
        }
    }

    fn capture_udp(&mut self, node: NodeId, dgram: &Datagram) {
        // Single lookup; ident allocation and encoding happen only when a
        // tap actually exists (untapped simulations pay one empty-map
        // check per packet).
        if self.taps.is_empty() {
            return;
        }
        if let Some(tap) = self.taps.get_mut(&node) {
            self.ip_ident = self.ip_ident.wrapping_add(1);
            let ident = self.ip_ident;
            // Zero-copy tap: the frame is encoded straight into the
            // writer's buffer — no intermediate per-record Vec.
            tap.record_with(self.now, |buf| wire::encode_udp_into(dgram, ident, buf));
        }
    }

    fn capture_icmp(&mut self, node: NodeId, icmp: &IcmpMessage) {
        if self.taps.is_empty() {
            return;
        }
        if let Some(tap) = self.taps.get_mut(&node) {
            self.ip_ident = self.ip_ident.wrapping_add(1);
            let ident = self.ip_ident;
            tap.record_with(self.now, |buf| wire::encode_icmp_into(icmp, ident, 64, buf));
        }
    }
}

/// Convenience: send a single UDP datagram from `node` as soon as the
/// simulation starts (token-0 timer + one-shot host wrapper are overkill
/// for tests and examples).
pub struct OneShotSender {
    send: Option<UdpSend>,
}

impl OneShotSender {
    /// Wrap a send to be issued on the first timer tick.
    pub fn new(send: UdpSend) -> Self {
        OneShotSender { send: Some(send) }
    }
}

impl Host for OneShotSender {
    fn on_datagram(&mut self, _ctx: &mut Ctx<'_>, _dgram: Datagram) {}

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        if let Some(send) = self.send.take() {
            ctx.send_udp(send);
        }
    }

    crate::impl_host_downcast!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;
    use crate::topology::{AsKind, AsSpec, CountryCode, HostSpec, Relationship, TopologyBuilder};
    use std::net::Ipv4Addr;

    fn ip(a: u8, b: u8, c: u8, d: u8) -> Ipv4Addr {
        Ipv4Addr::new(a, b, c, d)
    }

    /// Echoes every datagram back to its source, from its own primary IP.
    struct Echo {
        received: Vec<Datagram>,
    }

    impl Host for Echo {
        fn on_datagram(&mut self, ctx: &mut Ctx<'_>, dgram: Datagram) {
            ctx.send_udp(UdpSend {
                src: None,
                src_port: dgram.dst_port,
                dst: dgram.src,
                dst_port: dgram.src_port,
                ttl: None,
                payload: dgram.payload.clone(),
            });
            self.received.push(dgram);
        }
        crate::impl_host_downcast!();
    }

    /// Collects everything it hears.
    #[derive(Default)]
    struct Sink {
        datagrams: Vec<Datagram>,
        icmp: Vec<IcmpMessage>,
    }

    impl Host for Sink {
        fn on_datagram(&mut self, _ctx: &mut Ctx<'_>, dgram: Datagram) {
            self.datagrams.push(dgram);
        }
        fn on_icmp(&mut self, _ctx: &mut Ctx<'_>, icmp: IcmpMessage) {
            self.icmp.push(icmp);
        }
        crate::impl_host_downcast!();
    }

    /// Sends one datagram on timer, then records replies and ICMP.
    struct Prober {
        send: UdpSend,
        replies: Vec<Datagram>,
        icmp: Vec<IcmpMessage>,
    }

    impl Host for Prober {
        fn on_datagram(&mut self, _ctx: &mut Ctx<'_>, dgram: Datagram) {
            self.replies.push(dgram);
        }
        fn on_icmp(&mut self, _ctx: &mut Ctx<'_>, icmp: IcmpMessage) {
            self.icmp.push(icmp);
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
            ctx.send_udp(self.send.clone());
        }
        crate::impl_host_downcast!();
    }

    /// Two ASes, A (scanner, SAV on) — B (server, SAV off), 2 routers total.
    fn two_as() -> (Topology, NodeId, NodeId, Ipv4Addr, Ipv4Addr) {
        let mut b = TopologyBuilder::new();
        let a0 = b.add_as(AsSpec {
            asn: 65001,
            country: CountryCode::new("DEU"),
            kind: AsKind::Transit,
            sav_outbound: true,
            transit_routers: vec![ip(10, 0, 0, 1)],
        });
        let a1 = b.add_as(AsSpec {
            asn: 65002,
            country: CountryCode::new("BRA"),
            kind: AsKind::EyeballIsp,
            sav_outbound: false,
            transit_routers: vec![ip(10, 1, 0, 1)],
        });
        b.connect(a0, a1, Relationship::ProviderCustomer);
        let scanner_ip = ip(192, 0, 2, 1);
        let server_ip = ip(203, 0, 113, 1);
        let scanner = b.add_host(a0, HostSpec::simple(scanner_ip));
        let server = b.add_host(a1, HostSpec::simple(server_ip));
        (b.build().unwrap(), scanner, server, scanner_ip, server_ip)
    }

    #[test]
    fn round_trip_udp() {
        let (topo, scanner, server, _scanner_ip, server_ip) = two_as();
        let mut sim = Simulator::new(topo, SimConfig::default());
        sim.install(
            scanner,
            Prober {
                send: UdpSend::new(34000, server_ip, 53, vec![1, 2, 3]),
                replies: vec![],
                icmp: vec![],
            },
        );
        sim.install(server, Echo { received: vec![] });
        sim.schedule_timer(scanner, SimDuration::ZERO, 0);
        assert!(sim.run());
        let prober: &Prober = sim.host_as(scanner).unwrap();
        assert_eq!(prober.replies.len(), 1);
        assert_eq!(prober.replies[0].payload, vec![1, 2, 3]);
        assert_eq!(prober.replies[0].src, server_ip);
        let echo: &Echo = sim.host_as(server).unwrap();
        assert_eq!(echo.received.len(), 1);
        // 2 routers each way: arrival TTL = 64 - 2.
        assert_eq!(echo.received[0].ttl, 62);
        assert_eq!(sim.stats().udp_sent, 2);
        assert_eq!(sim.stats().udp_delivered, 2);
    }

    #[test]
    fn sav_blocks_spoofing_and_open_as_allows_it() {
        let (topo, scanner, server, scanner_ip, server_ip) = two_as();
        let mut sim = Simulator::new(topo, SimConfig::default());
        // The scanner's AS has SAV: spoofing from there must die.
        sim.install(
            scanner,
            Prober {
                send: UdpSend {
                    src: Some(ip(198, 51, 100, 99)),
                    src_port: 1,
                    dst: server_ip,
                    dst_port: 53,
                    ttl: None,
                    payload: vec![].into(),
                },
                replies: vec![],
                icmp: vec![],
            },
        );
        sim.install(server, Sink::default());
        sim.schedule_timer(scanner, SimDuration::ZERO, 0);
        sim.run();
        assert_eq!(sim.stats().dropped_sav, 1);
        assert_eq!(sim.stats().udp_delivered, 0);

        // The server's AS has no SAV: spoofing from there flows — and the
        // reply path goes to the spoofed address's owner.
        let (topo, scanner, server, scanner_ip2, _server_ip2) = two_as();
        assert_eq!(scanner_ip, scanner_ip2);
        let mut sim = Simulator::new(topo, SimConfig::default());
        sim.install(
            server,
            Prober {
                send: UdpSend {
                    src: Some(scanner_ip2), // spoof the scanner
                    src_port: 7,
                    dst: ip(192, 0, 2, 1),
                    dst_port: 9,
                    ttl: None,
                    payload: vec![0xAA].into(),
                },
                replies: vec![],
                icmp: vec![],
            },
        );
        sim.install(scanner, Sink::default());
        sim.schedule_timer(server, SimDuration::ZERO, 0);
        sim.run();
        assert_eq!(sim.stats().spoofed_sent, 1);
        let sink: &Sink = sim.host_as(scanner).unwrap();
        assert_eq!(sink.datagrams.len(), 1);
        assert_eq!(
            sink.datagrams[0].src, scanner_ip2,
            "spoofed source visible at receiver"
        );
    }

    #[test]
    fn ttl_expiry_generates_time_exceeded_with_quote() {
        let (topo, scanner, server, scanner_ip, server_ip) = two_as();
        let mut sim = Simulator::new(topo, SimConfig::default());
        sim.install(
            scanner,
            Prober {
                send: UdpSend {
                    src: None,
                    src_port: 33434,
                    dst: server_ip,
                    dst_port: 53,
                    ttl: Some(1),
                    payload: vec![9].into(),
                },
                replies: vec![],
                icmp: vec![],
            },
        );
        sim.install(server, Sink::default());
        sim.schedule_timer(scanner, SimDuration::ZERO, 0);
        sim.run();
        let prober: &Prober = sim.host_as(scanner).unwrap();
        assert_eq!(prober.icmp.len(), 1);
        let m = &prober.icmp[0];
        assert_eq!(m.kind, IcmpKind::TimeExceeded);
        assert_eq!(m.from, ip(10, 0, 0, 1), "first router on the path");
        let q = m.quote.unwrap();
        assert_eq!(q.src, scanner_ip);
        assert_eq!(q.src_port, 33434);
        assert_eq!(q.dst, server_ip);
        assert_eq!(sim.stats().dropped_ttl, 1);
        let sink: &Sink = sim.host_as(server).unwrap();
        assert!(sink.datagrams.is_empty());
    }

    #[test]
    fn port_unreachable_round_trip() {
        let (topo, scanner, server, _scanner_ip, server_ip) = two_as();
        struct Closed;
        impl Host for Closed {
            fn on_datagram(&mut self, ctx: &mut Ctx<'_>, dgram: Datagram) {
                ctx.send_port_unreachable(&dgram);
            }
            crate::impl_host_downcast!();
        }
        let mut sim = Simulator::new(topo, SimConfig::default());
        sim.install(
            scanner,
            Prober {
                send: UdpSend::new(40000, server_ip, 9999, vec![]),
                replies: vec![],
                icmp: vec![],
            },
        );
        sim.install(server, Closed);
        sim.schedule_timer(scanner, SimDuration::ZERO, 0);
        sim.run();
        let prober: &Prober = sim.host_as(scanner).unwrap();
        assert_eq!(prober.icmp.len(), 1);
        assert_eq!(prober.icmp[0].kind, IcmpKind::PortUnreachable);
        assert_eq!(prober.icmp[0].from, server_ip);
    }

    #[test]
    fn unknown_destination_counted() {
        let (topo, scanner, _server, _a, _b) = two_as();
        let mut sim = Simulator::new(topo, SimConfig::default());
        sim.install(
            scanner,
            OneShotSender::new(UdpSend::new(1, ip(100, 64, 0, 1), 53, vec![])),
        );
        sim.schedule_timer(scanner, SimDuration::ZERO, 0);
        sim.run();
        assert_eq!(sim.stats().dropped_no_such_host, 1);
    }

    /// Sends one probe per timer token, each on its own source port —
    /// fifty distinct flow keys for the stateless fault plane to decide.
    struct TokenProber {
        dst: Ipv4Addr,
        replies: Vec<Datagram>,
    }

    impl Host for TokenProber {
        fn on_datagram(&mut self, _ctx: &mut Ctx<'_>, dgram: Datagram) {
            self.replies.push(dgram);
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
            ctx.send_udp(UdpSend::new(
                30000 + token as u16,
                self.dst,
                53,
                vec![token as u8, !token as u8],
            ));
        }
        crate::impl_host_downcast!();
    }

    #[test]
    fn deterministic_under_seed() {
        let run = |seed| {
            let (topo, scanner, server, _a, server_ip) = two_as();
            let mut sim = Simulator::new(
                topo,
                SimConfig {
                    seed,
                    faults: FaultPlan::lossy(0.3),
                    ..SimConfig::default()
                },
            );
            sim.install(server, Echo { received: vec![] });
            sim.install(
                scanner,
                TokenProber {
                    dst: server_ip,
                    replies: vec![],
                },
            );
            for i in 0..50u64 {
                sim.schedule_timer(scanner, SimDuration::from_millis(i), i);
            }
            sim.run();
            (sim.stats().clone(), sim.now())
        };
        let (s1, t1) = run(7);
        let (s2, t2) = run(7);
        assert_eq!(s1, s2);
        assert_eq!(t1, t2);
        let (s3, t3) = run(8);
        assert_ne!(
            (s1, t1),
            (s3, t3),
            "different seed should change fault pattern"
        );
    }

    #[test]
    fn tap_captures_request_and_reply_as_valid_pcap() {
        let (topo, scanner, server, _a, server_ip) = two_as();
        let mut sim = Simulator::new(topo, SimConfig::default());
        sim.tap(scanner);
        sim.install(
            scanner,
            Prober {
                send: UdpSend::new(34000, server_ip, 53, vec![5, 5]),
                replies: vec![],
                icmp: vec![],
            },
        );
        sim.install(server, Echo { received: vec![] });
        sim.schedule_timer(scanner, SimDuration::ZERO, 0);
        sim.run();
        let pcap = sim.take_capture(scanner).unwrap();
        let records = crate::pcap::read_pcap(&pcap).unwrap();
        assert_eq!(records.len(), 2, "outgoing probe + incoming reply");
        match crate::wire::decode(&records[0].data).unwrap() {
            crate::wire::DecodedPacket::Udp(d) => {
                assert_eq!(d.dst, server_ip);
                assert_eq!(d.ttl, 64, "captured at send time, before decrements");
            }
            other => panic!("expected UDP, got {other:?}"),
        }
        match crate::wire::decode(&records[1].data).unwrap() {
            crate::wire::DecodedPacket::Udp(d) => {
                assert_eq!(d.src, server_ip);
                assert!(d.ttl < 64, "reply TTL decremented in transit");
            }
            other => panic!("expected UDP, got {other:?}"),
        }
    }

    #[test]
    fn event_budget_stops_runaway() {
        // Two echo hosts pointed at each other: infinite ping-pong.
        let (topo, a, b, _ia, ib) = two_as();
        let mut sim = Simulator::new(
            topo,
            SimConfig {
                max_events: 1000,
                ..SimConfig::default()
            },
        );
        sim.install(a, Echo { received: vec![] });
        sim.install(b, Echo { received: vec![] });
        // Bootstrap: a sends to b.
        sim.install(a, OneShotSender::new(UdpSend::new(1, ib, 2, vec![])));
        sim.schedule_timer(a, SimDuration::ZERO, 0);
        // Reinstalling replaced Echo on a; b echoes to a which swallows.
        // Force the loop differently: b echoes, a (OneShot) ignores — so
        // instead install echo on both via fresh sim below.
        let drained = sim.run();
        assert!(drained, "simple exchange should drain");
    }

    #[test]
    fn steady_state_sends_hit_route_cache_without_rebuilding_paths() {
        // N sends along one route: the first resolve materializes the hop
        // list (one miss); every subsequent send must be a cache hit —
        // i.e. steady-state `process_send` performs no per-packet hop-list
        // allocation, the property the zero-allocation hot path rests on.
        let (topo, scanner, server, _a, server_ip) = two_as();
        let mut sim = Simulator::new(topo, SimConfig::default());
        sim.install(server, Sink::default());
        let n = 64u64;
        for i in 0..n {
            sim.install(
                scanner,
                OneShotSender::new(UdpSend::new(1000 + i as u16, server_ip, 53, vec![i as u8])),
            );
            sim.schedule_timer(scanner, SimDuration::from_millis(i), 0);
            sim.run();
        }
        let stats = sim.stats();
        assert_eq!(stats.udp_sent, n);
        assert_eq!(
            stats.route_cache_misses, 1,
            "exactly one path materialization for one unique route"
        );
        assert_eq!(
            stats.route_cache_hits,
            n - 1,
            "every steady-state send must borrow the cached path"
        );
    }

    #[test]
    fn reset_reproduces_a_fresh_run_bit_for_bit() {
        // Run a lossy, jittered exchange twice over the same simulator
        // with a reset in between, and once more over a cold simulator:
        // all three captures must be byte-identical, including timestamps
        // and IP idents — the warm-world reuse contract.
        let config = SimConfig {
            seed: 41,
            faults: FaultPlan::lossy(0.2),
            ..SimConfig::default()
        };
        let drive = |sim: &mut Simulator, scanner: NodeId, server: NodeId, server_ip: Ipv4Addr| {
            sim.tap(scanner);
            sim.install(server, Echo { received: vec![] });
            for i in 0..40u64 {
                sim.install(
                    scanner,
                    Prober {
                        send: UdpSend::new(30000 + i as u16, server_ip, 53, vec![i as u8]),
                        replies: vec![],
                        icmp: vec![],
                    },
                );
                sim.schedule_timer(scanner, SimDuration::from_millis(i), 0);
                sim.run();
            }
            (sim.take_capture(scanner).unwrap(), sim.now())
        };

        let (topo, scanner, server, _a, server_ip) = two_as();
        let mut sim = Simulator::new(topo, config.clone());
        let (first, t1) = drive(&mut sim, scanner, server, server_ip);
        sim.reset(&config);
        assert_eq!(sim.now(), SimTime::ZERO);
        assert_eq!(sim.stats().udp_sent, 0);
        let (second, t2) = drive(&mut sim, scanner, server, server_ip);
        assert_eq!(first, second, "reset run must replay the capture");
        assert_eq!(t1, t2);

        let (topo, scanner, server, _a, server_ip) = two_as();
        let mut cold = Simulator::new(topo, config.clone());
        let (third, _) = drive(&mut cold, scanner, server, server_ip);
        assert_eq!(first, third, "warm reset matches a cold simulator");
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let (topo, scanner, server, _a, server_ip) = two_as();
        let mut sim = Simulator::new(topo, SimConfig::default());
        sim.install(server, Echo { received: vec![] });
        sim.install(
            scanner,
            Prober {
                send: UdpSend::new(2, server_ip, 53, vec![]),
                replies: vec![],
                icmp: vec![],
            },
        );
        sim.schedule_timer(scanner, SimDuration::from_secs(10), 0);
        assert!(sim.run_until(SimTime::ZERO + SimDuration::from_secs(5)));
        assert_eq!(
            sim.stats().udp_sent,
            0,
            "timer beyond deadline must not fire"
        );
        sim.run();
        assert_eq!(sim.stats().udp_sent, 2);
    }
}
