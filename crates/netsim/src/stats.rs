//! Simulation-wide counters.

use std::fmt;

/// Why a packet was dropped instead of delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DropReason {
    /// The sender's AS enforces outbound source-address validation and the
    /// source IP was spoofed — the filter that *prevents* transparent
    /// forwarding in well-run networks (§2).
    SavOutbound,
    /// No route between the endpoints.
    NoRoute,
    /// Destination IP not assigned to any host.
    NoSuchHost,
    /// TTL reached zero in transit (an ICMP Time Exceeded was emitted).
    TtlExpired,
    /// Fault-injection drop: the packet silently vanished in transit.
    Fault,
    /// Fault-injection corruption: the packet arrived damaged and the
    /// receiver's checksum verification discarded it.
    Corrupt,
}

/// Counters maintained by the simulator. All fields are cumulative.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimStats {
    /// UDP datagrams submitted by hosts.
    pub udp_sent: u64,
    /// UDP datagrams delivered to hosts.
    pub udp_delivered: u64,
    /// UDP datagrams sent with a spoofed source that were *permitted*
    /// (sender's AS does not filter) — every transparent-forwarder relay
    /// increments this.
    pub spoofed_sent: u64,
    /// Drops by reason.
    pub dropped_sav: u64,
    /// No-route drops.
    pub dropped_no_route: u64,
    /// Unassigned-destination drops.
    pub dropped_no_such_host: u64,
    /// TTL expiries (each also generates an ICMP Time Exceeded).
    pub dropped_ttl: u64,
    /// Fault-injection drops (packet vanished in transit).
    pub dropped_fault: u64,
    /// Corrupt-discard drops (packet arrived damaged; the receiver's
    /// checksum check threw it away). A distinct class from
    /// `dropped_fault` so loss and corruption are separately attributable.
    pub dropped_corrupt: u64,
    /// ICMP messages delivered.
    pub icmp_delivered: u64,
    /// ICMP messages whose destination did not exist (e.g. errors toward a
    /// spoofed, unassigned victim address).
    pub icmp_undeliverable: u64,
    /// Duplicates injected by fault config (the extra copies delivered,
    /// not drops — the third fault class next to drop and corrupt).
    pub duplicates_injected: u64,
    /// Retransmissions submitted by hosts (UDP sends with attempt > 0).
    pub retransmits_sent: u64,
    /// Total UDP payload bytes delivered (amplification accounting).
    pub udp_bytes_delivered: u64,
    /// Timer events fired.
    pub timers_fired: u64,
    /// Timer callbacks served from an already-popped batch event —
    /// queue operations batched pacing avoided (a burst of B probes
    /// fires B callbacks from one event: 1 fired + B-1 coalesced).
    pub timers_coalesced: u64,
    /// Events scheduled into the timer wheel (O(1) near-future slots).
    pub events_wheel_scheduled: u64,
    /// Events scheduled into the far-future overflow heap (beyond the
    /// wheel's 2^36 µs horizon — long timeouts, end-of-run sentinels).
    pub events_heap_scheduled: u64,
    /// Total events processed.
    pub events_processed: u64,
    /// Full-path route-cache hits: sends whose route was served from the
    /// resolver's `(src node, dst node)` cache with *no* hop-list
    /// allocation. In steady state (every route warm) this tracks
    /// `udp_sent` minus one miss per unique route.
    pub route_cache_hits: u64,
    /// Full-path route-cache misses (each materialized one `Path`).
    pub route_cache_misses: u64,
}

impl SimStats {
    /// Record a drop.
    pub fn record_drop(&mut self, reason: DropReason) {
        match reason {
            DropReason::SavOutbound => self.dropped_sav += 1,
            DropReason::NoRoute => self.dropped_no_route += 1,
            DropReason::NoSuchHost => self.dropped_no_such_host += 1,
            DropReason::TtlExpired => self.dropped_ttl += 1,
            DropReason::Fault => self.dropped_fault += 1,
            DropReason::Corrupt => self.dropped_corrupt += 1,
        }
    }

    /// Total drops across all reasons.
    pub fn total_dropped(&self) -> u64 {
        self.dropped_sav
            + self.dropped_no_route
            + self.dropped_no_such_host
            + self.dropped_ttl
            + self.dropped_fault
            + self.dropped_corrupt
    }

    /// Delivery ratio over UDP (delivered / sent), 1.0 when nothing sent.
    pub fn delivery_ratio(&self) -> f64 {
        if self.udp_sent == 0 {
            1.0
        } else {
            self.udp_delivered as f64 / self.udp_sent as f64
        }
    }
}

impl fmt::Display for SimStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "udp: sent={} delivered={} spoofed={} bytes={}",
            self.udp_sent, self.udp_delivered, self.spoofed_sent, self.udp_bytes_delivered
        )?;
        writeln!(
            f,
            "drops: sav={} no_route={} no_host={} ttl={} fault={} corrupt={}",
            self.dropped_sav,
            self.dropped_no_route,
            self.dropped_no_such_host,
            self.dropped_ttl,
            self.dropped_fault,
            self.dropped_corrupt
        )?;
        writeln!(
            f,
            "icmp: delivered={} undeliverable={} | dup={} retx={} timers={} coalesced={} events={}",
            self.icmp_delivered,
            self.icmp_undeliverable,
            self.duplicates_injected,
            self.retransmits_sent,
            self.timers_fired,
            self.timers_coalesced,
            self.events_processed
        )?;
        writeln!(
            f,
            "queue: wheel_scheduled={} heap_scheduled={}",
            self.events_wheel_scheduled, self.events_heap_scheduled
        )?;
        write!(
            f,
            "routes: cache_hits={} cache_misses={}",
            self.route_cache_hits, self.route_cache_misses
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_drop_routes_to_right_counter() {
        let mut s = SimStats::default();
        s.record_drop(DropReason::SavOutbound);
        s.record_drop(DropReason::TtlExpired);
        s.record_drop(DropReason::TtlExpired);
        assert_eq!(s.dropped_sav, 1);
        assert_eq!(s.dropped_ttl, 2);
        assert_eq!(s.total_dropped(), 3);
    }

    #[test]
    fn fault_and_corrupt_are_distinct_drop_classes() {
        let mut s = SimStats::default();
        s.record_drop(DropReason::Fault);
        s.record_drop(DropReason::Corrupt);
        s.record_drop(DropReason::Corrupt);
        assert_eq!(s.dropped_fault, 1);
        assert_eq!(s.dropped_corrupt, 2);
        assert_eq!(s.total_dropped(), 3);
        let text = s.to_string();
        assert!(text.contains("fault=1"));
        assert!(text.contains("corrupt=2"));
    }

    #[test]
    fn delivery_ratio_handles_zero() {
        let s = SimStats::default();
        assert_eq!(s.delivery_ratio(), 1.0);
        let s = SimStats {
            udp_sent: 4,
            udp_delivered: 3,
            ..SimStats::default()
        };
        assert!((s.delivery_ratio() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn display_mentions_key_counters() {
        let s = SimStats {
            udp_sent: 5,
            dropped_sav: 2,
            ..SimStats::default()
        };
        let text = s.to_string();
        assert!(text.contains("sent=5"));
        assert!(text.contains("sav=2"));
    }
}
