//! Structured packet types flowing through the simulator.
//!
//! The simulator dispatches *structured* packets for speed; wire-faithful
//! byte encodings (used by pcap capture and by tests that cross-check the
//! codecs) live in [`crate::wire`].

use std::fmt;
use std::net::Ipv4Addr;
use std::ops::Deref;
use std::sync::{Arc, OnceLock};

/// Default initial TTL for host-originated packets, matching common OS
/// defaults (Linux).
pub const DEFAULT_TTL: u8 = 64;

/// Immutable, cheaply-clonable packet payload.
///
/// Backed by `Arc<[u8]>`: a transparent forwarder relaying a query, an
/// echo reply, or a fault-injected duplicate clones the handle (one
/// refcount bump) instead of memcpying the DNS message. Hosts that need
/// to *modify* bytes copy out with [`Payload::to_vec`] first — payloads
/// on the wire are immutable, exactly like real packets in flight.
#[derive(Clone)]
pub struct Payload(Arc<[u8]>);

impl Payload {
    /// The shared empty payload (no allocation after first use).
    pub fn empty() -> Self {
        static EMPTY: OnceLock<Arc<[u8]>> = OnceLock::new();
        Payload(EMPTY.get_or_init(|| Arc::from(&[][..])).clone())
    }

    /// Number of live handles to these bytes (diagnostics/tests: proves a
    /// relay shared rather than copied).
    pub fn handle_count(&self) -> usize {
        Arc::strong_count(&self.0)
    }
}

impl Deref for Payload {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Payload {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl Default for Payload {
    fn default() -> Self {
        Payload::empty()
    }
}

impl fmt::Debug for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&self.0, f)
    }
}

impl From<Vec<u8>> for Payload {
    fn from(v: Vec<u8>) -> Self {
        Payload(Arc::from(v))
    }
}

impl From<&[u8]> for Payload {
    fn from(v: &[u8]) -> Self {
        Payload(Arc::from(v))
    }
}

impl<const N: usize> From<[u8; N]> for Payload {
    fn from(v: [u8; N]) -> Self {
        Payload(Arc::from(&v[..]))
    }
}

impl From<Arc<[u8]>> for Payload {
    fn from(v: Arc<[u8]>) -> Self {
        Payload(v)
    }
}

impl PartialEq for Payload {
    fn eq(&self, other: &Self) -> bool {
        // Pointer equality first: relayed copies share the allocation.
        Arc::ptr_eq(&self.0, &other.0) || *self.0 == *other.0
    }
}
impl Eq for Payload {}

impl std::hash::Hash for Payload {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.hash(state)
    }
}

impl PartialEq<[u8]> for Payload {
    fn eq(&self, other: &[u8]) -> bool {
        *self.0 == *other
    }
}
impl PartialEq<&[u8]> for Payload {
    fn eq(&self, other: &&[u8]) -> bool {
        *self.0 == **other
    }
}
impl PartialEq<Vec<u8>> for Payload {
    fn eq(&self, other: &Vec<u8>) -> bool {
        *self.0 == other[..]
    }
}
impl<const N: usize> PartialEq<[u8; N]> for Payload {
    fn eq(&self, other: &[u8; N]) -> bool {
        *self.0 == other[..]
    }
}
impl<const N: usize> PartialEq<&[u8; N]> for Payload {
    fn eq(&self, other: &&[u8; N]) -> bool {
        *self.0 == other[..]
    }
}

/// A UDP datagram together with its IP-layer envelope, as seen by a host.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Datagram {
    /// IP source address. For traffic relayed by a transparent forwarder
    /// this is the *original requester*, not the forwarder — the defining
    /// property the whole study rests on (§2).
    pub src: Ipv4Addr,
    /// IP destination address.
    pub dst: Ipv4Addr,
    /// UDP source port.
    pub src_port: u16,
    /// UDP destination port.
    pub dst_port: u16,
    /// TTL remaining *on arrival* (after per-router decrements). A receiving
    /// transparent forwarder relays with `ttl - 1`, which is what lets
    /// DNSRoute++ see beyond it (§5).
    pub ttl: u8,
    /// UDP payload (typically a DNS message). Cheaply clonable: relays,
    /// echoes, and duplicates share the bytes instead of copying them.
    pub payload: Payload,
}

impl Datagram {
    /// Total IPv4 wire size of this datagram: 20 (IP) + 8 (UDP) + payload.
    pub fn wire_len(&self) -> usize {
        20 + 8 + self.payload.len()
    }

    /// The flow tuple `(src, src_port, dst, dst_port)`.
    pub fn flow(&self) -> (Ipv4Addr, u16, Ipv4Addr, u16) {
        (self.src, self.src_port, self.dst, self.dst_port)
    }
}

impl fmt::Display for Datagram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{} > {}:{} ttl={} len={}",
            self.src,
            self.src_port,
            self.dst,
            self.dst_port,
            self.ttl,
            self.payload.len()
        )
    }
}

/// The quoted original datagram inside an ICMP error, as per RFC 792: the
/// offending IP header plus the first 8 octets of its payload — exactly
/// enough to recover the UDP ports, which is how traceroute (and
/// DNSRoute++) match responses to probes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuotedDatagram {
    /// Original IP source.
    pub src: Ipv4Addr,
    /// Original IP destination.
    pub dst: Ipv4Addr,
    /// Original UDP source port.
    pub src_port: u16,
    /// Original UDP destination port.
    pub dst_port: u16,
}

/// ICMP messages the simulator models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IcmpKind {
    /// Time Exceeded in transit (type 11, code 0) — the workhorse of
    /// DNSRoute++.
    TimeExceeded,
    /// Destination unreachable / port unreachable (type 3, code 3).
    PortUnreachable,
    /// Destination unreachable / host unreachable (type 3, code 1).
    HostUnreachable,
    /// Echo request (type 8) — used by the device fingerprinting probes.
    EchoRequest,
    /// Echo reply (type 0).
    EchoReply,
}

impl IcmpKind {
    /// ICMP type octet.
    pub fn type_code(self) -> (u8, u8) {
        match self {
            IcmpKind::TimeExceeded => (11, 0),
            IcmpKind::PortUnreachable => (3, 3),
            IcmpKind::HostUnreachable => (3, 1),
            IcmpKind::EchoRequest => (8, 0),
            IcmpKind::EchoReply => (0, 0),
        }
    }

    /// Reverse of [`IcmpKind::type_code`].
    pub fn from_type_code(t: u8, c: u8) -> Option<Self> {
        match (t, c) {
            (11, 0) => Some(IcmpKind::TimeExceeded),
            (3, 3) => Some(IcmpKind::PortUnreachable),
            (3, 1) => Some(IcmpKind::HostUnreachable),
            (8, 0) => Some(IcmpKind::EchoRequest),
            (0, 0) => Some(IcmpKind::EchoReply),
            _ => None,
        }
    }
}

/// A structured ICMP message delivered to a host.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IcmpMessage {
    /// Address the ICMP message originates from (a router for Time
    /// Exceeded, the probed host for Port Unreachable).
    pub from: Ipv4Addr,
    /// Address the message is sent to (the original packet's source — for
    /// spoofed traffic this is the spoofed victim/scanner, not the relay).
    pub to: Ipv4Addr,
    /// Kind of message.
    pub kind: IcmpKind,
    /// Quote of the datagram that triggered the error (absent for echo).
    pub quote: Option<QuotedDatagram>,
}

impl fmt::Display for IcmpMessage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (t, c) = self.kind.type_code();
        write!(f, "icmp {}>{} type={t} code={c}", self.from, self.to)?;
        if let Some(q) = &self.quote {
            write!(
                f,
                " quoting {}:{}>{}:{}",
                q.src, q.src_port, q.dst, q.dst_port
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_len_accounts_for_headers() {
        let d = Datagram {
            src: Ipv4Addr::new(192, 0, 2, 1),
            dst: Ipv4Addr::new(203, 0, 113, 1),
            src_port: 34000,
            dst_port: 53,
            ttl: 64,
            payload: vec![0; 30].into(),
        };
        assert_eq!(d.wire_len(), 58);
    }

    #[test]
    fn icmp_type_codes_roundtrip() {
        for k in [
            IcmpKind::TimeExceeded,
            IcmpKind::PortUnreachable,
            IcmpKind::HostUnreachable,
            IcmpKind::EchoRequest,
            IcmpKind::EchoReply,
        ] {
            let (t, c) = k.type_code();
            assert_eq!(IcmpKind::from_type_code(t, c), Some(k));
        }
        assert_eq!(IcmpKind::from_type_code(42, 0), None);
    }

    #[test]
    fn display_formats() {
        let d = Datagram {
            src: Ipv4Addr::new(192, 0, 2, 1),
            dst: Ipv4Addr::new(203, 0, 113, 1),
            src_port: 34000,
            dst_port: 53,
            ttl: 7,
            payload: vec![1, 2, 3].into(),
        };
        assert_eq!(
            d.to_string(),
            "192.0.2.1:34000 > 203.0.113.1:53 ttl=7 len=3"
        );
    }
}
