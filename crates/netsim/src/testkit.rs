//! Test support: tiny topologies and scripted traffic drivers.
//!
//! Unit tests all over the workspace need to poke a single [`Host`]
//! implementation with hand-built datagrams and observe what comes back.
//! This module provides a one-AS "playground" topology and a
//! [`ScriptedClient`] that fires a prepared send sequence and records every
//! datagram and ICMP message it receives.

use crate::host::{Ctx, Host, UdpSend};
use crate::packet::{Datagram, IcmpMessage};
use crate::sim::{SimConfig, Simulator};
use crate::time::{SimDuration, SimTime};
use crate::topology::{AsKind, AsSpec, CountryCode, HostSpec, NodeId, Topology, TopologyBuilder};
use std::net::Ipv4Addr;

/// Build a single-AS topology (no SAV, one transit router `10.255.0.1`)
/// with one host per address in `ips`. Returns the topology and node ids in
/// input order.
pub fn playground(ips: &[Ipv4Addr]) -> (Topology, Vec<NodeId>) {
    playground_with_sav(ips, false)
}

/// [`playground`] with an explicit outbound-SAV policy for the single AS.
pub fn playground_with_sav(ips: &[Ipv4Addr], sav: bool) -> (Topology, Vec<NodeId>) {
    let mut b = TopologyBuilder::new();
    let a = b.add_as(AsSpec {
        asn: 64512,
        country: CountryCode::new("ZZZ"),
        kind: AsKind::Unclassified,
        sav_outbound: sav,
        transit_routers: vec![Ipv4Addr::new(10, 255, 0, 1)],
    });
    let nodes = ips
        .iter()
        .map(|ip| b.add_host(a, HostSpec::simple(*ip)))
        .collect();
    (b.build().expect("playground topology is valid"), nodes)
}

/// A host that fires a prepared list of sends at given offsets and records
/// everything it hears back.
#[derive(Debug, Default)]
pub struct ScriptedClient {
    script: Vec<UdpSend>,
    /// Datagrams received, with arrival times.
    pub datagrams: Vec<(SimTime, Datagram)>,
    /// ICMP messages received, with arrival times.
    pub icmp: Vec<(SimTime, IcmpMessage)>,
}

impl ScriptedClient {
    /// Create an empty client (useful as a pure listener).
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a send; returns the timer token to schedule it with.
    pub fn push(&mut self, send: UdpSend) -> u64 {
        self.script.push(send);
        (self.script.len() - 1) as u64
    }
}

impl Host for ScriptedClient {
    fn on_datagram(&mut self, ctx: &mut Ctx<'_>, dgram: Datagram) {
        self.datagrams.push((ctx.now(), dgram));
    }

    fn on_icmp(&mut self, ctx: &mut Ctx<'_>, icmp: IcmpMessage) {
        self.icmp.push((ctx.now(), icmp));
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if let Some(send) = self.script.get(token as usize) {
            ctx.send_udp(send.clone());
        }
    }

    crate::impl_host_downcast!();
}

/// Install a scripted client at `node` firing `sends` at the given offsets,
/// scheduling all necessary timers.
pub fn install_script(sim: &mut Simulator, node: NodeId, sends: Vec<(SimDuration, UdpSend)>) {
    let mut client = ScriptedClient::new();
    let mut timers = Vec::new();
    for (delay, send) in sends {
        let token = client.push(send);
        timers.push((delay, token));
    }
    sim.install(node, client);
    for (delay, token) in timers {
        sim.schedule_timer(node, delay, token);
    }
}

/// One-call harness: one subject host and one scripted driver in a shared
/// AS. Runs the script to completion and returns the driver's recordings.
pub struct Exchange {
    sim: Simulator,
    driver: NodeId,
    subject: NodeId,
}

impl Exchange {
    /// Build with the subject at `subject_ip` and the driver at
    /// `driver_ip`.
    pub fn new<H: Host>(subject_ip: Ipv4Addr, driver_ip: Ipv4Addr, subject: H) -> Self {
        let (topo, nodes) = playground(&[subject_ip, driver_ip]);
        let mut sim = Simulator::new(topo, SimConfig::default());
        sim.install(nodes[0], subject);
        sim.install(nodes[1], ScriptedClient::new());
        Exchange {
            sim,
            driver: nodes[1],
            subject: nodes[0],
        }
    }

    /// Queue a send from the driver at `delay`.
    pub fn send_at(&mut self, delay: SimDuration, send: UdpSend) {
        let client = self
            .sim
            .host_as_mut::<ScriptedClient>(self.driver)
            .expect("driver is a ScriptedClient");
        let token = client.push(send);
        self.sim.schedule_timer(self.driver, delay, token);
    }

    /// Run to quiescence.
    pub fn run(&mut self) {
        self.sim.run();
    }

    /// Everything the driver received.
    pub fn received(&self) -> &[(SimTime, Datagram)] {
        &self
            .sim
            .host_as::<ScriptedClient>(self.driver)
            .expect("driver")
            .datagrams
    }

    /// ICMP the driver received.
    pub fn icmp(&self) -> &[(SimTime, IcmpMessage)] {
        &self
            .sim
            .host_as::<ScriptedClient>(self.driver)
            .expect("driver")
            .icmp
    }

    /// Borrow the subject host back (for stats assertions).
    pub fn subject<H: Host>(&self) -> &H {
        self.sim.host_as(self.subject).expect("subject type")
    }

    /// The underlying simulator (e.g. for stats).
    pub fn sim(&self) -> &Simulator {
        &self.sim
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Upper;
    impl Host for Upper {
        fn on_datagram(&mut self, ctx: &mut Ctx<'_>, dgram: Datagram) {
            // Mutation requires copying out: payloads in flight are shared.
            let mut payload = dgram.payload.to_vec();
            payload.make_ascii_uppercase();
            ctx.send_udp(UdpSend {
                src: Some(dgram.dst),
                src_port: dgram.dst_port,
                dst: dgram.src,
                dst_port: dgram.src_port,
                ttl: None,
                payload: payload.into(),
            });
        }
        crate::impl_host_downcast!();
    }

    #[test]
    fn exchange_round_trip() {
        let subject_ip = Ipv4Addr::new(10, 0, 0, 1);
        let driver_ip = Ipv4Addr::new(10, 0, 0, 2);
        let mut ex = Exchange::new(subject_ip, driver_ip, Upper);
        ex.send_at(
            SimDuration::ZERO,
            UdpSend::new(4000, subject_ip, 7, b"hello".to_vec()),
        );
        ex.send_at(
            SimDuration::from_millis(10),
            UdpSend::new(4001, subject_ip, 7, b"bye".to_vec()),
        );
        ex.run();
        let got = ex.received();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].1.payload, b"HELLO");
        assert_eq!(got[1].1.payload, b"BYE");
        assert!(got[0].0 < got[1].0);
    }

    #[test]
    fn playground_hosts_are_reachable() {
        let ips = [
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            Ipv4Addr::new(10, 0, 0, 3),
        ];
        let (topo, nodes) = playground(&ips);
        assert_eq!(topo.host_count(), 3);
        assert_eq!(topo.host_spec(nodes[2]).ip, ips[2]);
    }
}
