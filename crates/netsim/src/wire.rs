//! Wire-faithful IPv4 / UDP / ICMP codecs.
//!
//! The paper's pipeline is `zmap` + `dumpcap` + offline pcap analysis. To
//! keep that pipeline honest we encode simulated packets to *real* wire
//! bytes — real header layouts, real checksums — whenever a capture tap is
//! attached, and the analysis crate re-parses those bytes. These codecs are
//! also reused by tests to cross-validate the structured fast path.

use crate::packet::{Datagram, IcmpKind, IcmpMessage, QuotedDatagram};
use std::net::Ipv4Addr;

/// Errors from the IPv4/UDP/ICMP codecs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PacketError {
    /// Buffer too short for the claimed structure.
    Truncated(&'static str),
    /// Not IPv4, or header length out of range.
    BadIpHeader,
    /// A checksum failed verification.
    BadChecksum(&'static str),
    /// IP protocol number we do not decode.
    UnsupportedProtocol(u8),
    /// ICMP type/code outside the modeled set.
    UnsupportedIcmp(u8, u8),
}

impl std::fmt::Display for PacketError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PacketError::Truncated(c) => write!(f, "packet truncated in {c}"),
            PacketError::BadIpHeader => write!(f, "bad IPv4 header"),
            PacketError::BadChecksum(c) => write!(f, "bad {c} checksum"),
            PacketError::UnsupportedProtocol(p) => write!(f, "unsupported IP protocol {p}"),
            PacketError::UnsupportedIcmp(t, c) => write!(f, "unsupported ICMP type {t} code {c}"),
        }
    }
}

impl std::error::Error for PacketError {}

/// IP protocol numbers used by the simulator.
pub const PROTO_ICMP: u8 = 1;
/// UDP protocol number.
pub const PROTO_UDP: u8 = 17;

/// RFC 1071 Internet checksum over `data`.
pub fn internet_checksum(data: &[u8]) -> u16 {
    fold(sum_words(data))
}

/// One's-complement sum of 16-bit big-endian words, unfolded. Partial sums
/// over even-length prefixes compose by addition, which is what lets the
/// UDP checksum cover pseudo-header + header + payload without ever
/// concatenating them into one buffer.
fn sum_words(data: &[u8]) -> u32 {
    let mut sum = 0u32;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    sum
}

fn fold(mut sum: u32) -> u16 {
    while sum >> 16 != 0 {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    !(sum as u16)
}

fn sum_ip(ip: Ipv4Addr) -> u32 {
    let o = ip.octets();
    u32::from(u16::from_be_bytes([o[0], o[1]])) + u32::from(u16::from_be_bytes([o[2], o[3]]))
}

fn ipv4_header(
    src: Ipv4Addr,
    dst: Ipv4Addr,
    proto: u8,
    ttl: u8,
    ident: u16,
    payload_len: usize,
) -> [u8; 20] {
    let total_len = (20 + payload_len) as u16;
    let mut h = [0u8; 20];
    h[0] = 0x45; // version 4, IHL 5
    h[1] = 0; // DSCP/ECN
    h[2..4].copy_from_slice(&total_len.to_be_bytes());
    h[4..6].copy_from_slice(&ident.to_be_bytes());
    h[6..8].copy_from_slice(&[0x40, 0x00]); // DF, no fragmentation in this study
    h[8] = ttl;
    h[9] = proto;
    // checksum at 10..12, computed below
    h[12..16].copy_from_slice(&src.octets());
    h[16..20].copy_from_slice(&dst.octets());
    let csum = internet_checksum(&h);
    h[10..12].copy_from_slice(&csum.to_be_bytes());
    h
}

/// Encode a UDP datagram as a full IPv4 packet (20-byte header, no options).
pub fn encode_udp(d: &Datagram, ident: u16) -> Vec<u8> {
    let mut out = Vec::with_capacity(28 + d.payload.len());
    encode_udp_into(d, ident, &mut out);
    out
}

/// Encode a UDP datagram as a full IPv4 packet, appending the wire bytes to
/// `out`. This is the zero-copy tap path: header and payload go straight
/// into the caller's buffer (typically a [`crate::pcap::PcapWriter`]'s) with
/// no intermediate framing Vec; bytes are identical to [`encode_udp`].
pub fn encode_udp_into(d: &Datagram, ident: u16, out: &mut Vec<u8>) {
    let udp_len = 8 + d.payload.len();
    out.reserve(20 + udp_len);
    out.extend_from_slice(&ipv4_header(d.src, d.dst, PROTO_UDP, d.ttl, ident, udp_len));
    let udp_start = out.len();
    out.extend_from_slice(&d.src_port.to_be_bytes());
    out.extend_from_slice(&d.dst_port.to_be_bytes());
    out.extend_from_slice(&(udp_len as u16).to_be_bytes());
    out.extend_from_slice(&[0, 0]); // checksum placeholder
    out.extend_from_slice(&d.payload);
    let csum = udp_checksum(d.src, d.dst, &out[udp_start..]);
    out[udp_start + 6..udp_start + 8].copy_from_slice(&csum.to_be_bytes());
}

/// UDP checksum with the IPv4 pseudo-header. Returns `0xFFFF` instead of 0,
/// as RFC 768 requires (0 means "no checksum").
pub fn udp_checksum(src: Ipv4Addr, dst: Ipv4Addr, udp: &[u8]) -> u16 {
    // The pseudo-header is summed field-wise (it is never materialized);
    // every part before the final one is even-length, so partial sums
    // compose by plain addition.
    let pseudo = sum_ip(src) + sum_ip(dst) + u32::from(PROTO_UDP) + u32::from(udp.len() as u16);
    let c = fold(pseudo + sum_words(udp));
    if c == 0 {
        0xFFFF
    } else {
        c
    }
}

/// Encode an ICMP message as a full IPv4 packet. Errors quote the original
/// IP header + 8 payload bytes per RFC 792, which is how DNSRoute++ recovers
/// the probe's UDP source port from a Time Exceeded reply.
pub fn encode_icmp(m: &IcmpMessage, ident: u16, ttl: u8) -> Vec<u8> {
    let mut out = Vec::with_capacity(56);
    encode_icmp_into(m, ident, ttl, &mut out);
    out
}

/// Encode an ICMP message as a full IPv4 packet, appending the wire bytes
/// to `out` (the zero-copy tap counterpart of [`encode_icmp`]; bytes are
/// identical).
pub fn encode_icmp_into(m: &IcmpMessage, ident: u16, ttl: u8, out: &mut Vec<u8>) {
    // 8-byte ICMP header, plus a 28-byte quote (inner IP header + UDP
    // ports/len/checksum) when the message carries one.
    let icmp_len = if m.quote.is_some() { 8 + 28 } else { 8 };
    out.reserve(20 + icmp_len);
    out.extend_from_slice(&ipv4_header(m.from, m.to, PROTO_ICMP, ttl, ident, icmp_len));
    let icmp_start = out.len();
    let (t, c) = m.kind.type_code();
    out.push(t);
    out.push(c);
    out.extend_from_slice(&[0, 0]); // checksum placeholder
    out.extend_from_slice(&[0, 0, 0, 0]); // unused / rest of header
    if let Some(q) = &m.quote {
        // Quoted original: IPv4 header + first 8 octets (the UDP header).
        let inner = ipv4_header(q.src, q.dst, PROTO_UDP, 1, 0, 8);
        out.extend_from_slice(&inner);
        out.extend_from_slice(&q.src_port.to_be_bytes());
        out.extend_from_slice(&q.dst_port.to_be_bytes());
        out.extend_from_slice(&[0, 8]); // quoted UDP length (min)
        out.extend_from_slice(&[0, 0]); // quoted UDP checksum (unverified)
    }
    let csum = internet_checksum(&out[icmp_start..]);
    out[icmp_start + 2..icmp_start + 4].copy_from_slice(&csum.to_be_bytes());
}

/// A packet decoded from wire bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodedPacket {
    /// A UDP datagram.
    Udp(Datagram),
    /// An ICMP message.
    Icmp(IcmpMessage),
}

/// Decode a raw IPv4 packet (as produced by [`encode_udp`]/[`encode_icmp`]),
/// verifying the IP header checksum and, for UDP, the UDP checksum.
pub fn decode(bytes: &[u8]) -> Result<DecodedPacket, PacketError> {
    if bytes.len() < 20 {
        return Err(PacketError::Truncated("ipv4 header"));
    }
    if bytes[0] >> 4 != 4 {
        return Err(PacketError::BadIpHeader);
    }
    let ihl = (bytes[0] & 0x0F) as usize * 4;
    if ihl < 20 || bytes.len() < ihl {
        return Err(PacketError::BadIpHeader);
    }
    if internet_checksum(&bytes[..ihl]) != 0 {
        return Err(PacketError::BadChecksum("ipv4 header"));
    }
    let total_len = u16::from_be_bytes([bytes[2], bytes[3]]) as usize;
    if total_len > bytes.len() || total_len < ihl {
        return Err(PacketError::Truncated("ipv4 total length"));
    }
    let ttl = bytes[8];
    let proto = bytes[9];
    let src = Ipv4Addr::new(bytes[12], bytes[13], bytes[14], bytes[15]);
    let dst = Ipv4Addr::new(bytes[16], bytes[17], bytes[18], bytes[19]);
    let body = &bytes[ihl..total_len];

    match proto {
        PROTO_UDP => {
            if body.len() < 8 {
                return Err(PacketError::Truncated("udp header"));
            }
            let src_port = u16::from_be_bytes([body[0], body[1]]);
            let dst_port = u16::from_be_bytes([body[2], body[3]]);
            let udp_len = u16::from_be_bytes([body[4], body[5]]) as usize;
            if udp_len < 8 || udp_len > body.len() {
                return Err(PacketError::Truncated("udp length"));
            }
            let declared_csum = u16::from_be_bytes([body[6], body[7]]);
            if declared_csum != 0 {
                let mut check = body[..udp_len].to_vec();
                check[6] = 0;
                check[7] = 0;
                if udp_checksum(src, dst, &check) != declared_csum {
                    return Err(PacketError::BadChecksum("udp"));
                }
            }
            Ok(DecodedPacket::Udp(Datagram {
                src,
                dst,
                src_port,
                dst_port,
                ttl,
                payload: body[8..udp_len].into(),
            }))
        }
        PROTO_ICMP => {
            if body.len() < 8 {
                return Err(PacketError::Truncated("icmp header"));
            }
            if internet_checksum(body) != 0 {
                return Err(PacketError::BadChecksum("icmp"));
            }
            let kind = IcmpKind::from_type_code(body[0], body[1])
                .ok_or(PacketError::UnsupportedIcmp(body[0], body[1]))?;
            let quote = if body.len() >= 8 + 20 + 8 {
                let q = &body[8..];
                let qsrc = Ipv4Addr::new(q[12], q[13], q[14], q[15]);
                let qdst = Ipv4Addr::new(q[16], q[17], q[18], q[19]);
                let qihl = (q[0] & 0x0F) as usize * 4;
                if q.len() >= qihl + 4 && q[9] == PROTO_UDP {
                    Some(QuotedDatagram {
                        src: qsrc,
                        dst: qdst,
                        src_port: u16::from_be_bytes([q[qihl], q[qihl + 1]]),
                        dst_port: u16::from_be_bytes([q[qihl + 2], q[qihl + 3]]),
                    })
                } else {
                    None
                }
            } else {
                None
            };
            Ok(DecodedPacket::Icmp(IcmpMessage {
                from: src,
                to: dst,
                kind,
                quote,
            }))
        }
        other => Err(PacketError::UnsupportedProtocol(other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dgram() -> Datagram {
        Datagram {
            src: Ipv4Addr::new(192, 0, 2, 1),
            dst: Ipv4Addr::new(203, 0, 113, 1),
            src_port: 34000,
            dst_port: 53,
            ttl: 64,
            payload: vec![0xAB; 17].into(),
        }
    }

    #[test]
    fn checksum_known_vector() {
        // RFC 1071 example-style check: sum of a buffer with its own
        // checksum inserted verifies to zero.
        let data = [
            0x45u8, 0x00, 0x00, 0x30, 0x44, 0x22, 0x40, 0x00, 0x80, 0x06, 0x00, 0x00, 0x8c, 0x7c,
            0x19, 0xac, 0xae, 0x24, 0x1e, 0x2b,
        ];
        let csum = internet_checksum(&data);
        let mut with = data;
        with[10..12].copy_from_slice(&csum.to_be_bytes());
        assert_eq!(internet_checksum(&with), 0);
    }

    #[test]
    fn odd_length_checksum() {
        assert_eq!(internet_checksum(&[0xFF]), !0xFF00u16);
    }

    #[test]
    fn udp_roundtrip() {
        let d = dgram();
        let bytes = encode_udp(&d, 0x4422);
        match decode(&bytes).unwrap() {
            DecodedPacket::Udp(back) => assert_eq!(back, d),
            other => panic!("expected UDP, got {other:?}"),
        }
    }

    #[test]
    fn udp_checksum_detects_corruption() {
        let d = dgram();
        let mut bytes = encode_udp(&d, 1);
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF; // flip payload byte
        assert_eq!(decode(&bytes), Err(PacketError::BadChecksum("udp")));
    }

    #[test]
    fn ip_checksum_detects_corruption() {
        let d = dgram();
        let mut bytes = encode_udp(&d, 1);
        bytes[8] = bytes[8].wrapping_add(1); // mutate TTL without fixing checksum
        assert_eq!(decode(&bytes), Err(PacketError::BadChecksum("ipv4 header")));
    }

    #[test]
    fn icmp_time_exceeded_roundtrip_preserves_quote() {
        let m = IcmpMessage {
            from: Ipv4Addr::new(10, 0, 0, 1),
            to: Ipv4Addr::new(192, 0, 2, 1),
            kind: IcmpKind::TimeExceeded,
            quote: Some(QuotedDatagram {
                src: Ipv4Addr::new(192, 0, 2, 1),
                dst: Ipv4Addr::new(203, 0, 113, 1),
                src_port: 34017,
                dst_port: 53,
            }),
        };
        let bytes = encode_icmp(&m, 7, 63);
        match decode(&bytes).unwrap() {
            DecodedPacket::Icmp(back) => {
                assert_eq!(back.kind, IcmpKind::TimeExceeded);
                assert_eq!(back.quote, m.quote);
                assert_eq!(back.from, m.from);
                assert_eq!(back.to, m.to);
            }
            other => panic!("expected ICMP, got {other:?}"),
        }
    }

    #[test]
    fn icmp_echo_has_no_quote() {
        let m = IcmpMessage {
            from: Ipv4Addr::new(10, 0, 0, 1),
            to: Ipv4Addr::new(192, 0, 2, 1),
            kind: IcmpKind::EchoReply,
            quote: None,
        };
        let bytes = encode_icmp(&m, 1, 64);
        match decode(&bytes).unwrap() {
            DecodedPacket::Icmp(back) => assert_eq!(back.quote, None),
            other => panic!("expected ICMP, got {other:?}"),
        }
    }

    #[test]
    fn truncated_and_garbage_rejected() {
        assert!(matches!(
            decode(&[0x45, 0x00]),
            Err(PacketError::Truncated(_))
        ));
        assert!(matches!(decode(&[0x60; 40]), Err(PacketError::BadIpHeader)));
        let d = dgram();
        let bytes = encode_udp(&d, 1);
        // IPv6 version nibble
        let mut v6 = bytes.clone();
        v6[0] = 0x65;
        assert!(decode(&v6).is_err());
    }

    #[test]
    fn ttl_survives_roundtrip() {
        let mut d = dgram();
        d.ttl = 3;
        let bytes = encode_udp(&d, 9);
        match decode(&bytes).unwrap() {
            DecodedPacket::Udp(back) => assert_eq!(back.ttl, 3),
            _ => unreachable!(),
        }
    }
}
