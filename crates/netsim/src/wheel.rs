//! Hierarchical timer-wheel event queue with a far-future heap overflow.
//!
//! The simulator's event queue pops strictly in `(time, sequence)` order.
//! A binary heap gives that order in O(log n) per operation; scans,
//! however, schedule almost everything within microseconds-to-seconds of
//! *now*, which a hierarchical timer wheel serves in O(1): six levels of
//! 64 slots, level `l` spanning `2^(6·l)` µs per slot, cover the next
//! `2^36` µs (≈ 19 hours of simulated time) — anything beyond spills into
//! a conventional [`BinaryHeap`] and pops through exact `(time, seq)`
//! comparison against the wheel's head, so the total order is preserved
//! bit for bit.
//!
//! Placement follows the kernel/tokio scheme: an event's level is the
//! highest 6-bit block in which its time differs from the wheel clock
//! (`now ^ at`), and its slot is that block of the *absolute* time. When
//! the clock advances into a slot's span, the slot cascades: entries
//! re-place at strictly lower levels (their high blocks now match the
//! clock). Absolute-bit slotting makes the structure robust to the one
//! clock anomaly a deadline-bounded run can create — a push *behind* the
//! wheel clock after a failed probe cascaded ahead of the caller's clock —
//! by rewinding the wheel clock to the pushed time; aliased slots that
//! temporarily hold events from several wheel turns self-heal by lifting
//! their entries back to the level the rewound clock implies.

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Levels in the hierarchy.
const LEVELS: usize = 6;
/// log2 of the slot count per level.
const SLOT_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 64;

/// Where [`TimerWheel::push`] stored an event — surfaced so the simulator
/// can count wheel-vs-heap scheduling in its stats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Within the wheel horizon: O(1) slot insert.
    Wheel,
    /// Beyond the `2^36` µs horizon: far-future overflow heap.
    Heap,
}

#[derive(Debug)]
struct Entry<T> {
    at: u64,
    seq: u64,
    item: T,
}

/// Far-future overflow entry, ordered by `(at, seq)` so the heap pops in
/// exactly the total order the wheel maintains.
#[derive(Debug)]
struct FarEntry<T> {
    at: u64,
    seq: u64,
    item: T,
}

impl<T> PartialEq for FarEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}
impl<T> Eq for FarEntry<T> {}
impl<T> PartialOrd for FarEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for FarEntry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The queue: a hierarchical timer wheel plus far-future overflow heap,
/// popping in exact `(time, seq)` order.
#[derive(Debug)]
pub struct TimerWheel<T> {
    /// The wheel clock: never ahead of the earliest pending event.
    wheel_now: u64,
    /// Per-level slot-occupancy bitmaps.
    occupied: [u64; LEVELS],
    /// `LEVELS × SLOTS` buckets, level-major.
    slots: Vec<Vec<Entry<T>>>,
    /// Events beyond the wheel horizon.
    far: BinaryHeap<Reverse<FarEntry<T>>>,
    len: usize,
}

impl<T> Default for TimerWheel<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// Level for an event at `at` given wheel clock `now`: the highest 6-bit
/// block where they differ (`LEVELS` and up means overflow).
fn level_for(now: u64, at: u64) -> usize {
    let masked = now ^ at;
    if masked == 0 {
        0
    } else {
        ((63 - masked.leading_zeros()) / SLOT_BITS) as usize
    }
}

impl<T> TimerWheel<T> {
    /// An empty queue with the clock at zero.
    pub fn new() -> Self {
        let mut slots = Vec::with_capacity(LEVELS * SLOTS);
        slots.resize_with(LEVELS * SLOTS, Vec::new);
        TimerWheel {
            wheel_now: 0,
            occupied: [0; LEVELS],
            slots,
            far: BinaryHeap::new(),
            len: 0,
        }
    }

    /// Pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Remove every pending event and rewind the clock to zero, keeping
    /// slot capacity (the warm-world reuse path).
    pub fn clear(&mut self) {
        for slot in &mut self.slots {
            slot.clear();
        }
        self.occupied = [0; LEVELS];
        self.far.clear();
        self.wheel_now = 0;
        self.len = 0;
    }

    /// Insert an event. `seq` values must be unique (they are the heap's
    /// tie-breaker at equal times). Pushing behind the wheel clock is
    /// allowed — the clock rewinds — but never behind the last pop.
    pub fn push(&mut self, at: SimTime, seq: u64, item: T) -> Placement {
        let at = at.0;
        if at < self.wheel_now {
            // A deadline-bounded probe cascaded the clock ahead of the
            // caller's; absolute-bit slotting makes rewinding safe.
            self.wheel_now = at;
        }
        self.len += 1;
        let lvl = level_for(self.wheel_now, at);
        if lvl >= LEVELS {
            self.far.push(Reverse(FarEntry { at, seq, item }));
            return Placement::Heap;
        }
        let slot = ((at >> (SLOT_BITS * lvl as u32)) & 63) as usize;
        self.slots[lvl * SLOTS + slot].push(Entry { at, seq, item });
        self.occupied[lvl] |= 1 << slot;
        Placement::Wheel
    }

    /// Earliest possible event time per the occupancy bitmaps, with the
    /// level/slot holding it. For level 0 the bound is exact unless the
    /// slot is aliased; for higher levels it is the slot's span start.
    /// Ties prefer the *highest* level so cascades refine before a pop.
    fn min_bound(&self) -> Option<(u64, usize, usize)> {
        let mut best: Option<(u64, usize, usize)> = None;
        for lvl in 0..LEVELS {
            let occ = self.occupied[lvl];
            if occ == 0 {
                continue;
            }
            let shift = SLOT_BITS * lvl as u32;
            let cur_tick = self.wheel_now >> shift;
            let cursor = (cur_tick & 63) as u32;
            let d = u64::from(occ.rotate_right(cursor).trailing_zeros());
            let bound = if d == 0 {
                self.wheel_now
            } else {
                let tick = cur_tick + d;
                if shift != 0 && tick > (u64::MAX >> shift) {
                    u64::MAX
                } else {
                    tick << shift
                }
            };
            let slot = ((u64::from(cursor) + d) & 63) as usize;
            match best {
                Some((b, _, _)) if b < bound => {}
                _ => best = Some((bound, lvl, slot)),
            }
        }
        best
    }

    /// Advance the clock to `bound` and re-place every entry of the slot;
    /// matching-tick entries drop to a strictly lower level, aliased ones
    /// (later wheel turns) lift to a strictly higher one.
    fn cascade(&mut self, lvl: usize, slot: usize, bound: u64) {
        debug_assert!(bound >= self.wheel_now);
        self.wheel_now = bound;
        let idx = lvl * SLOTS + slot;
        let mut entries = std::mem::take(&mut self.slots[idx]);
        self.occupied[lvl] &= !(1 << slot);
        self.len -= entries.len();
        for e in entries.drain(..) {
            debug_assert_ne!(level_for(self.wheel_now, e.at), lvl, "cascade must move");
            self.push(SimTime(e.at), e.seq, e.item);
        }
        // The drained slot kept its capacity; hand it back if the bucket
        // was left unallocated (entries never re-place into their source).
        if self.slots[idx].capacity() == 0 {
            self.slots[idx] = entries;
        }
    }

    fn pop_far(&mut self) -> (SimTime, u64, T) {
        let Reverse(e) = self.far.pop().expect("caller checked the heap top");
        self.len -= 1;
        debug_assert!(e.at >= self.wheel_now);
        self.wheel_now = e.at;
        (SimTime(e.at), e.seq, e.item)
    }

    /// Pop the earliest event if its time is `<= deadline`; `None` when
    /// the queue is empty or everything pending lies beyond the deadline
    /// (events stay queued). Exact `(time, seq)` order across wheel and
    /// overflow heap.
    pub fn pop_at_or_before(&mut self, deadline: SimTime) -> Option<(SimTime, u64, T)> {
        let dl = deadline.0;
        loop {
            let far_top = self.far.peek().map(|Reverse(e)| (e.at, e.seq));
            let Some((bound, lvl, slot)) = self.min_bound() else {
                return match far_top {
                    Some((at, _)) if at <= dl => Some(self.pop_far()),
                    _ => None,
                };
            };
            if let Some((fat, _)) = far_top {
                if fat < bound {
                    return (fat <= dl).then(|| self.pop_far());
                }
            }
            if bound > dl {
                return None; // far top is >= bound here, so it is late too
            }
            if lvl > 0 {
                self.cascade(lvl, slot, bound);
                continue;
            }
            // Level 0: the slot normally holds one event time; scan for
            // the `(at, seq)` minimum so aliased entries and same-tick
            // ties resolve exactly.
            let v = &self.slots[slot];
            let mut mi = 0;
            for (i, e) in v.iter().enumerate().skip(1) {
                if (e.at, e.seq) < (v[mi].at, v[mi].seq) {
                    mi = i;
                }
            }
            let (mat, mseq) = (v[mi].at, v[mi].seq);
            if mat != bound {
                // Fully aliased slot (only later-turn events): lift all of
                // them to the level the current clock implies and retry.
                self.cascade(0, slot, self.wheel_now);
                continue;
            }
            if let Some((fat, fseq)) = far_top {
                if (fat, fseq) < (mat, mseq) {
                    return Some(self.pop_far());
                }
            }
            let e = self.slots[slot].remove(mi);
            if self.slots[slot].is_empty() {
                self.occupied[0] &= !(1 << slot);
            }
            self.len -= 1;
            debug_assert!(e.at >= self.wheel_now);
            self.wheel_now = e.at;
            return Some((SimTime(e.at), e.seq, e.item));
        }
    }

    /// Pop the earliest event unconditionally.
    pub fn pop(&mut self) -> Option<(SimTime, u64, T)> {
        self.pop_at_or_before(SimTime(u64::MAX))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// The reference implementation: the exact `(time, seq)` total order
    /// the simulator ran on before the wheel landed.
    type RefHeap = BinaryHeap<Reverse<(u64, u64)>>;

    fn ref_pop_at_or_before(heap: &mut RefHeap, dl: u64) -> Option<(u64, u64)> {
        match heap.peek() {
            Some(&Reverse((at, _))) if at <= dl => heap.pop().map(|Reverse(k)| k),
            _ => None,
        }
    }

    /// A randomized event time biased toward the regimes that matter:
    /// same-tick ties, near-future scan traffic, cross-slot-boundary
    /// jumps, and far-future events beyond the 2^36 µs wheel horizon.
    fn random_at(rng: &mut SmallRng, now: u64) -> u64 {
        match rng.gen_range(0u32..12) {
            0 => now,                                               // same-tick tie
            1..=5 => now + rng.gen_range(0u64..200),                // burst pacing
            6..=7 => now + rng.gen_range(0u64..100_000),            // RTT scale
            8..=9 => now + rng.gen_range(0u64..30_000_000),         // timeout scale
            10 => now + rng.gen_range((1u64 << 35)..(1u64 << 37)),  // horizon edge
            _ => now + (1u64 << 36) + rng.gen_range(0u64..1 << 20), // overflow
        }
    }

    #[test]
    fn differential_pop_order_matches_binary_heap_reference() {
        for seed in 0..6u64 {
            let mut rng = SmallRng::seed_from_u64(0xD1FF_0000 ^ seed);
            let mut wheel: TimerWheel<(u64, u64)> = TimerWheel::new();
            let mut heap: RefHeap = BinaryHeap::new();
            let mut seq = 0u64;
            let mut now = 0u64; // last popped time: the push lower bound
            let mut overflowed = false;
            for _ in 0..1_500 {
                for _ in 0..rng.gen_range(0usize..4) {
                    let at = random_at(&mut rng, now);
                    if wheel.push(SimTime(at), seq, (at, seq)) == Placement::Heap {
                        overflowed = true;
                    }
                    heap.push(Reverse((at, seq)));
                    seq += 1;
                }
                for _ in 0..rng.gen_range(0usize..4) {
                    match (wheel.pop(), heap.pop()) {
                        (Some((at, s, item)), Some(Reverse(want))) => {
                            assert_eq!((at.0, s), want, "pop order diverged");
                            assert_eq!(item, want, "payload followed the wrong key");
                            now = at.0;
                        }
                        (None, None) => break,
                        (w, h) => panic!("length diverged: wheel {w:?} vs heap {h:?}"),
                    }
                }
                assert_eq!(wheel.len(), heap.len());
            }
            while let Some(Reverse(want)) = heap.pop() {
                let (at, s, _) = wheel.pop().expect("wheel drains with the reference");
                assert_eq!((at.0, s), want);
            }
            assert!(wheel.pop().is_none());
            assert!(wheel.is_empty());
            assert!(overflowed, "seed {seed} never exercised the overflow heap");
        }
    }

    #[test]
    fn differential_with_deadlines_and_clock_rewinds() {
        // Deadline-bounded pops cascade the wheel clock ahead of the last
        // popped time; pushes relative to the *caller's* clock then land
        // behind the wheel clock and must still pop in exact order.
        for seed in 0..6u64 {
            let mut rng = SmallRng::seed_from_u64(0x5EED_0000 ^ seed);
            let mut wheel: TimerWheel<u64> = TimerWheel::new();
            let mut heap: RefHeap = BinaryHeap::new();
            let mut seq = 0u64;
            let mut now = 0u64;
            for _ in 0..1_500 {
                for _ in 0..rng.gen_range(0usize..4) {
                    let at = random_at(&mut rng, now);
                    wheel.push(SimTime(at), seq, seq);
                    heap.push(Reverse((at, seq)));
                    seq += 1;
                }
                // A deadline that often lands *before* the next event
                // (forcing the probe-and-refuse path), sometimes far out.
                let dl = now + rng.gen_range(0u64..40_000_000);
                loop {
                    let got = wheel.pop_at_or_before(SimTime(dl));
                    let want = ref_pop_at_or_before(&mut heap, dl);
                    match (got, want) {
                        (Some((at, s, _)), Some(k)) => {
                            assert_eq!((at.0, s), k);
                            now = at.0;
                        }
                        (None, None) => break,
                        (g, w) => panic!("deadline pop diverged: {g:?} vs {w:?}"),
                    }
                }
            }
            while let Some(Reverse(want)) = heap.pop() {
                let (at, s, _) = wheel.pop().expect("wheel drains with the reference");
                assert_eq!((at.0, s), want);
            }
            assert!(wheel.is_empty());
        }
    }

    #[test]
    fn same_tick_ties_pop_in_sequence_order() {
        let mut wheel: TimerWheel<u64> = TimerWheel::new();
        // Interleave two times, pushing seqs out of slot-insertion order
        // via an early far placement that cascades back down.
        wheel.push(SimTime(1 << 37), 0, 0); // far heap
        for s in 1..50u64 {
            wheel.push(SimTime(500 + (s % 2)), s, s);
        }
        let mut got = Vec::new();
        while let Some((at, s, _)) = wheel.pop_at_or_before(SimTime(1_000)) {
            got.push((at.0, s));
        }
        let mut want: Vec<(u64, u64)> = (1..50u64).map(|s| (500 + (s % 2), s)).collect();
        want.sort();
        assert_eq!(got, want);
        // The far event is still there, beyond the deadline.
        assert_eq!(wheel.len(), 1);
        assert_eq!(wheel.pop().map(|(at, s, _)| (at.0, s)), Some((1 << 37, 0)));
    }

    #[test]
    fn clear_resets_clock_and_capacity_survives() {
        let mut wheel: TimerWheel<u8> = TimerWheel::new();
        wheel.push(SimTime(10), 0, 1);
        wheel.push(SimTime(1 << 40), 1, 2);
        assert_eq!(wheel.len(), 2);
        wheel.clear();
        assert!(wheel.is_empty());
        // After clear the clock is back at zero: time-zero pushes pop.
        wheel.push(SimTime(0), 0, 3);
        assert_eq!(wheel.pop().map(|(at, s, v)| (at.0, s, v)), Some((0, 0, 3)));
    }
}
