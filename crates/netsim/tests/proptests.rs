//! Property-based tests for the simulator substrate.
//!
//! Invariants:
//! * wire codecs round-trip arbitrary datagrams and never panic on junk;
//! * pcap round-trips arbitrary packet sequences;
//! * routing over random topologies: paths start in the source AS, end in
//!   the destination AS, never visit a non-transit AS in the middle
//!   (valley-free), and TTL expiry is consistent with hop counts;
//! * token buckets never exceed capacity.

use netsim::wire::{decode, encode_udp, DecodedPacket};
use netsim::{
    AsId, AsKind, AsSpec, CountryCode, Datagram, HostSpec, Relationship, RouteResolver,
    SimDuration, SimTime, TokenBucket, Topology, TopologyBuilder,
};
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn arb_datagram() -> impl Strategy<Value = Datagram> {
    (
        any::<[u8; 4]>(),
        any::<[u8; 4]>(),
        any::<u16>(),
        any::<u16>(),
        1u8..=255,
        proptest::collection::vec(any::<u8>(), 0..256),
    )
        .prop_map(|(src, dst, src_port, dst_port, ttl, payload)| Datagram {
            src: Ipv4Addr::from(src),
            dst: Ipv4Addr::from(dst),
            src_port,
            dst_port,
            ttl,
            payload: payload.into(),
        })
}

/// A random hierarchical topology: `t` transit ASes in a ring with
/// chords, `e` edge (eyeball) ASes each homed to 1-2 transits, one host
/// per edge AS.
#[derive(Debug, Clone)]
struct RandomWorld {
    transits: usize,
    edges: Vec<(usize, Option<usize>)>, // (primary transit, optional second home)
}

fn arb_world() -> impl Strategy<Value = RandomWorld> {
    (2usize..6).prop_flat_map(|transits| {
        let edge = (0..transits, proptest::option::of(0..transits))
            .prop_map(move |(primary, second)| (primary, second.filter(|s| *s != primary)));
        proptest::collection::vec(edge, 1..12)
            .prop_map(move |edges| RandomWorld { transits, edges })
    })
}

fn build(world: &RandomWorld) -> (Topology, Vec<netsim::NodeId>) {
    let mut b = TopologyBuilder::new();
    let mut router_block = 0u32;
    let mut routers = |n: usize| -> Vec<Ipv4Addr> {
        let block = router_block;
        router_block += 1;
        (0..n)
            .map(|i| Ipv4Addr::new(10, (block >> 8) as u8, block as u8, (i + 1) as u8))
            .collect()
    };
    let transits: Vec<AsId> = (0..world.transits)
        .map(|i| {
            b.add_as(AsSpec {
                asn: 100 + i as u32,
                country: CountryCode::new("ZZZ"),
                kind: AsKind::Transit,
                sav_outbound: true,
                transit_routers: routers(1 + i % 2),
            })
        })
        .collect();
    // Ring + chord to transit 0 keeps the transit core connected.
    for i in 0..transits.len() {
        let j = (i + 1) % transits.len();
        if i < j {
            b.connect(transits[i], transits[j], Relationship::Peer);
        }
    }
    if transits.len() > 2 {
        // close the ring
        b.connect(
            transits[0],
            transits[transits.len() - 1],
            Relationship::Peer,
        );
    }
    let mut nodes = Vec::new();
    for (i, (primary, second)) in world.edges.iter().enumerate() {
        let as_id = b.add_as(AsSpec {
            asn: 1000 + i as u32,
            country: CountryCode::new("EDG"),
            kind: AsKind::EyeballIsp,
            sav_outbound: false,
            transit_routers: routers(1),
        });
        b.connect(transits[*primary], as_id, Relationship::ProviderCustomer);
        if let Some(s) = second {
            b.connect(transits[*s], as_id, Relationship::ProviderCustomer);
        }
        let ip = Ipv4Addr::new(11, (i >> 8) as u8, i as u8, 1);
        nodes.push(b.add_host(as_id, HostSpec::simple(ip)));
    }
    // An anycast service with PoPs at the first and last edge host, so
    // route-cache properties cover PoP selection too.
    if nodes.len() >= 2 {
        b.add_anycast_instance(ANYCAST_IP, nodes[0]);
        b.add_anycast_instance(ANYCAST_IP, nodes[nodes.len() - 1]);
    }
    (b.build().expect("random world is valid"), nodes)
}

/// Anycast service address registered by [`build`] when it has ≥2 hosts.
const ANYCAST_IP: Ipv4Addr = Ipv4Addr::new(8, 8, 8, 8);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn udp_wire_roundtrip(d in arb_datagram(), ident in any::<u16>()) {
        let bytes = encode_udp(&d, ident);
        match decode(&bytes) {
            Ok(DecodedPacket::Udp(back)) => prop_assert_eq!(back, d),
            other => prop_assert!(false, "decode failed: {other:?}"),
        }
    }

    #[test]
    fn wire_decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
        let _ = decode(&bytes);
    }

    #[test]
    fn pcap_roundtrip(packets in proptest::collection::vec(
        (any::<u64>(), proptest::collection::vec(any::<u8>(), 0..64)), 0..20)
    ) {
        let mut w = netsim::pcap::PcapWriter::new();
        // Timestamps must fit the pcap second/micro split.
        for (ts, data) in &packets {
            w.write(SimTime(*ts % 4_000_000_000_000), data);
        }
        let records = netsim::pcap::read_pcap(&w.finish()).unwrap();
        prop_assert_eq!(records.len(), packets.len());
        for (rec, (ts, data)) in records.iter().zip(&packets) {
            prop_assert_eq!(rec.ts, SimTime(*ts % 4_000_000_000_000));
            prop_assert_eq!(&rec.data, data);
        }
    }

    #[test]
    fn routing_paths_are_valley_free_and_consistent(world in arb_world()) {
        let (topo, nodes) = build(&world);
        let mut resolver = RouteResolver::new();
        for &src in &nodes {
            for &dst in &nodes {
                if src == dst {
                    continue;
                }
                let dst_ip = topo.host_spec(dst).ip;
                let path = resolver
                    .resolve(&topo, src, dst_ip)
                    .expect("connected world must route");
                // Endpoints.
                prop_assert_eq!(*path.as_path.first().unwrap(), topo.as_of_node(src));
                prop_assert_eq!(*path.as_path.last().unwrap(), topo.as_of_node(dst));
                // Valley-free: interior ASes are transits.
                for window in &path.as_path[1..path.as_path.len().saturating_sub(1)] {
                    prop_assert_eq!(topo.as_spec(*window).kind, AsKind::Transit);
                }
                // Every hop belongs to an AS on the path.
                for hop in &path.hops {
                    prop_assert!(path.as_path.contains(&hop.as_id),
                        "hop {} in {} not on AS path", hop.ip, hop.as_id);
                }
                // TTL semantics: expiry for every ttl <= hops, delivery after.
                let hops = path.router_hops() as u8;
                for ttl in 1..=hops {
                    prop_assert!(path.expiry_hop(ttl).is_some());
                }
                prop_assert!(path.expiry_hop(hops + 1).is_none());
                // Latency is positive and monotone.
                let mut last = SimDuration::ZERO;
                for hop in &path.hops {
                    prop_assert!(hop.latency > last);
                    last = hop.latency;
                }
                prop_assert!(path.total_latency > last);
            }
        }
    }

    /// A warm full-path cache must be invisible: resolves through a warm
    /// resolver return hop lists, latencies, AS paths, and anycast
    /// selections identical to a cold resolver's, and the cache never
    /// holds more entries than distinct `(src node, dst node)` pairs.
    #[test]
    fn warm_route_cache_matches_cold_resolver(world in arb_world()) {
        let (topo, nodes) = build(&world);
        let mut warm = RouteResolver::new();
        let mut distinct_pairs = std::collections::HashSet::new();
        // Warm pass over every host pair and every anycast view.
        for &src in &nodes {
            for &dst in &nodes {
                if src == dst {
                    continue;
                }
                let dst_ip = topo.host_spec(dst).ip;
                if let Ok(p) = warm.resolve(&topo, src, dst_ip) {
                    distinct_pairs.insert((src, p.dst_node));
                }
            }
            if let Ok(p) = warm.resolve(&topo, src, ANYCAST_IP) {
                distinct_pairs.insert((src, p.dst_node));
            }
        }
        let len_after_warmup = warm.path_cache_len();
        prop_assert!(
            len_after_warmup <= distinct_pairs.len(),
            "cache size {} exceeds distinct pairs {}",
            len_after_warmup,
            distinct_pairs.len()
        );
        // Second pass: cache hits must be bit-identical to cold resolves.
        for &src in &nodes {
            for &dst in &nodes {
                if src == dst {
                    continue;
                }
                let dst_ip = topo.host_spec(dst).ip;
                let cached = warm.resolve(&topo, src, dst_ip).expect("routed in warm pass");
                let cold = RouteResolver::new()
                    .resolve(&topo, src, dst_ip)
                    .expect("cold resolver must route");
                prop_assert_eq!(cached.dst_node, cold.dst_node);
                prop_assert_eq!(&cached.hops, &cold.hops);
                prop_assert_eq!(cached.total_latency, cold.total_latency);
                prop_assert_eq!(&cached.as_path, &cold.as_path);
            }
            // Anycast: the warm cache must reproduce the cold PoP choice.
            match (
                warm.resolve(&topo, src, ANYCAST_IP),
                RouteResolver::new().resolve(&topo, src, ANYCAST_IP),
            ) {
                (Ok(cached), Ok(cold)) => {
                    prop_assert_eq!(cached.dst_node, cold.dst_node);
                    prop_assert_eq!(&cached.hops, &cold.hops);
                    prop_assert_eq!(cached.total_latency, cold.total_latency);
                }
                (Err(a), Err(b)) => prop_assert_eq!(a, b),
                (a, b) => prop_assert!(false, "warm/cold disagree: {a:?} vs {b:?}"),
            }
        }
        // Re-resolving everything must not grow the cache.
        prop_assert_eq!(warm.path_cache_len(), len_after_warmup);
    }

    #[test]
    fn route_is_deterministic(world in arb_world()) {
        let (topo, nodes) = build(&world);
        if nodes.len() < 2 {
            return Ok(());
        }
        let dst_ip = topo.host_spec(nodes[1]).ip;
        let mut r1 = RouteResolver::new();
        let mut r2 = RouteResolver::new();
        let p1 = r1.resolve(&topo, nodes[0], dst_ip).unwrap();
        let p2 = r2.resolve(&topo, nodes[0], dst_ip).unwrap();
        prop_assert_eq!(p1.hops.len(), p2.hops.len());
        for (a, b) in p1.hops.iter().zip(&p2.hops) {
            prop_assert_eq!(a.ip, b.ip);
        }
    }

    #[test]
    fn token_bucket_never_exceeds_capacity(
        capacity in 1u64..20,
        refill in 1u64..20,
        period_ms in 1u64..1000,
        probes in proptest::collection::vec((0u64..100_000, any::<bool>()), 1..50),
    ) {
        let mut bucket = TokenBucket::new(capacity, refill, SimDuration::from_millis(period_ms));
        let mut times: Vec<u64> = probes.iter().map(|(t, _)| *t).collect();
        times.sort_unstable();
        let mut granted_in_window = 0u64;
        let mut window_start = 0u64;
        for t in times {
            let now = SimTime(t * 1000);
            if bucket.try_take(now) {
                // Coarse upper bound: within any single period at most
                // capacity + refill grants can happen.
                if t - window_start < period_ms {
                    granted_in_window += 1;
                    prop_assert!(granted_in_window <= capacity + refill,
                        "too many grants in one period");
                } else {
                    window_start = t;
                    granted_in_window = 1;
                }
            }
        }
    }
}
