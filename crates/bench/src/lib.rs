//! Shared helpers for the benchmark harness.
//!
//! Every bench regenerates one table or figure of the paper: it first
//! prints the reproduced artifact (the same rows/series the paper
//! reports), then measures the underlying pipeline with criterion.
//! Absolute numbers differ from the paper (the substrate is a simulator,
//! scaled down); the *shape* — who wins, by what factor, where crossovers
//! fall — is what EXPERIMENTS.md compares.

use inetgen::{CountrySelection, GenConfig, Internet};

/// The standard bench world: the full country table at 1:500 scale
/// (≈4.3k ODNS hosts). Deterministic.
pub fn bench_world() -> Internet {
    inetgen::generate(&GenConfig {
        scale: 500,
        ..GenConfig::default()
    })
}

/// A focused world for path experiments: the six headline countries at a
/// scale that yields hundreds of transparent forwarders.
pub fn path_world() -> Internet {
    inetgen::generate(&GenConfig {
        countries: CountrySelection::Codes(vec!["BRA", "IND", "USA", "TUR", "ARG", "IDN"]),
        scale: 1_000,
        dud_fraction: 0.0,
        ..GenConfig::default()
    })
}

/// A dense world where whole-/24 middleboxes materialize (Figure 8 needs
/// per-country populations in the hundreds).
pub fn density_world() -> Internet {
    inetgen::generate(&GenConfig::density_scale())
}

/// A tiny world for hot-loop measurement (criterion iterations rebuild
/// worlds, so they must be cheap).
pub fn tiny_world() -> Internet {
    inetgen::generate(&GenConfig {
        countries: CountrySelection::Codes(vec!["MUS", "FSM"]),
        scale: 1_000,
        dud_fraction: 0.0,
        ..GenConfig::default()
    })
}

/// Standard criterion settings: small samples, short measurement — the
/// pipelines under test are seconds-long end-to-end runs.
pub fn criterion() -> criterion::Criterion {
    criterion::Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}

/// Print a bench banner.
pub fn banner(what: &str, paper: &str) {
    println!("\n================================================================");
    println!("Reproducing {what}");
    println!("Paper reference: {paper}");
    println!("================================================================");
}

/// Path of the shared perf artifact: `BENCH_simcore.json` at the
/// workspace root, overridable via `BENCH_SIMCORE_OUT`.
pub fn bench_artifact_path() -> String {
    std::env::var("BENCH_SIMCORE_OUT")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_simcore.json").into())
}

/// Merge one named section into the shared perf artifact.
///
/// The artifact is a flat JSON object of per-bench sections (plus a
/// `schema` tag). Each bench owns one key and rewrites only its own
/// section, so the `hotpath` and `dnsroute` measurements can run in any
/// order — or alone — and the uploaded artifact always carries every
/// section that has been produced. Returns the path written.
pub fn merge_bench_section(key: &str, section_json: &str) -> std::io::Result<String> {
    let path = bench_artifact_path();
    let mut sections = std::fs::read_to_string(&path)
        .ok()
        .and_then(|s| parse_sections(&s))
        .unwrap_or_default();
    match sections.iter_mut().find(|(k, _)| k == key) {
        Some((_, v)) => *v = section_json.to_string(),
        None => sections.push((key.to_string(), section_json.to_string())),
    }
    let mut out = String::from("{\n  \"schema\": 2");
    for (k, v) in &sections {
        out.push_str(",\n  \"");
        out.push_str(k);
        out.push_str("\": ");
        out.push_str(v.trim());
    }
    out.push_str("\n}\n");
    std::fs::write(&path, out)?;
    Ok(path)
}

/// Minimal parser for the artifact's own output format: a top-level JSON
/// object tagged `"schema": 2` with string keys and balanced-brace
/// values. Anything unexpected — malformed input *or* the flat schema-1
/// format, whose top-level keys are measurements rather than sections —
/// yields `None` and the caller starts a fresh artifact.
fn parse_sections(s: &str) -> Option<Vec<(String, String)>> {
    let b = s.as_bytes();
    let mut i = 0usize;
    fn skip_ws(b: &[u8], i: &mut usize) {
        while *i < b.len() && b[*i].is_ascii_whitespace() {
            *i += 1;
        }
    }
    skip_ws(b, &mut i);
    if i >= b.len() || b[i] != b'{' {
        return None;
    }
    i += 1;
    let mut schema_2 = false;
    let mut sections = Vec::new();
    loop {
        skip_ws(b, &mut i);
        if i < b.len() && b[i] == b'}' {
            return schema_2.then_some(sections);
        }
        if i >= b.len() || b[i] != b'"' {
            return None;
        }
        i += 1;
        let key_start = i;
        while i < b.len() && b[i] != b'"' {
            i += 1;
        }
        if i >= b.len() {
            return None;
        }
        let key = s[key_start..i].to_string();
        i += 1;
        skip_ws(b, &mut i);
        if i >= b.len() || b[i] != b':' {
            return None;
        }
        i += 1;
        skip_ws(b, &mut i);
        let value_start = i;
        let mut depth = 0i32;
        let mut in_str = false;
        let mut escaped = false;
        while i < b.len() {
            let c = b[i];
            if in_str {
                if escaped {
                    escaped = false;
                } else if c == b'\\' {
                    escaped = true;
                } else if c == b'"' {
                    in_str = false;
                }
            } else if c == b'"' {
                in_str = true;
            } else if c == b'{' || c == b'[' {
                depth += 1;
            } else if c == b'}' || c == b']' {
                if depth == 0 {
                    break;
                }
                depth -= 1;
            } else if c == b',' && depth == 0 {
                break;
            }
            i += 1;
        }
        if i >= b.len() {
            return None;
        }
        let value = s[value_start..i].trim().to_string();
        // `schema` is regenerated on every write, not a section — but it
        // must identify the sectioned format, or the old flat schema-1
        // keys would leak into the rewritten artifact as bogus sections.
        if key == "schema" {
            schema_2 = value == "2";
        } else {
            sections.push((key, value));
        }
        if b[i] == b',' {
            i += 1;
            continue;
        }
        // b[i] == b'}' closes the object.
        return schema_2.then_some(sections);
    }
}

#[cfg(test)]
mod tests {
    use super::parse_sections;

    #[test]
    fn sections_roundtrip() {
        let doc = "{\n  \"schema\": 2,\n  \"hotpath\": {\n    \"probes_per_second\": 1000,\n    \"nested\": { \"a\": [1, 2, 3], \"s\": \"b}r{ace\" }\n  },\n  \"dnsroute\": { \"traces_per_second\": 42.5 }\n}\n";
        let sections = parse_sections(doc).expect("parses");
        assert_eq!(sections.len(), 2, "schema dropped: {sections:?}");
        assert_eq!(sections[0].0, "hotpath");
        assert!(sections[0].1.contains("\"probes_per_second\": 1000"));
        assert_eq!(sections[1].0, "dnsroute");
        assert_eq!(sections[1].1, "{ \"traces_per_second\": 42.5 }");
    }

    #[test]
    fn garbage_yields_none() {
        assert_eq!(parse_sections(""), None);
        assert_eq!(parse_sections("not json"), None);
        assert_eq!(parse_sections("{ \"unterminated\": {"), None);
    }

    #[test]
    fn flat_schema1_artifact_discarded() {
        // The pre-section format: top-level keys are measurements. They
        // must not survive as sections of the rewritten artifact.
        let old = "{\n  \"schema\": 1,\n  \"bench\": \"micro_simcore/hotpath\",\n  \"steady\": { \"probes_per_second\": 985000 }\n}\n";
        assert_eq!(parse_sections(old), None);
        let untagged = "{ \"hotpath\": { \"a\": 1 } }";
        assert_eq!(parse_sections(untagged), None);
    }
}
