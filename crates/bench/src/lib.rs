//! Shared helpers for the benchmark harness.
//!
//! Every bench regenerates one table or figure of the paper: it first
//! prints the reproduced artifact (the same rows/series the paper
//! reports), then measures the underlying pipeline with criterion.
//! Absolute numbers differ from the paper (the substrate is a simulator,
//! scaled down); the *shape* — who wins, by what factor, where crossovers
//! fall — is what EXPERIMENTS.md compares.

use inetgen::{CountrySelection, GenConfig, Internet};

/// The standard bench world: the full country table at 1:500 scale
/// (≈4.3k ODNS hosts). Deterministic.
pub fn bench_world() -> Internet {
    inetgen::generate(&GenConfig {
        scale: 500,
        ..GenConfig::default()
    })
}

/// A focused world for path experiments: the six headline countries at a
/// scale that yields hundreds of transparent forwarders.
pub fn path_world() -> Internet {
    inetgen::generate(&GenConfig {
        countries: CountrySelection::Codes(vec!["BRA", "IND", "USA", "TUR", "ARG", "IDN"]),
        scale: 1_000,
        dud_fraction: 0.0,
        ..GenConfig::default()
    })
}

/// A dense world where whole-/24 middleboxes materialize (Figure 8 needs
/// per-country populations in the hundreds).
pub fn density_world() -> Internet {
    inetgen::generate(&GenConfig::density_scale())
}

/// A tiny world for hot-loop measurement (criterion iterations rebuild
/// worlds, so they must be cheap).
pub fn tiny_world() -> Internet {
    inetgen::generate(&GenConfig {
        countries: CountrySelection::Codes(vec!["MUS", "FSM"]),
        scale: 1_000,
        dud_fraction: 0.0,
        ..GenConfig::default()
    })
}

/// Standard criterion settings: small samples, short measurement — the
/// pipelines under test are seconds-long end-to-end runs.
pub fn criterion() -> criterion::Criterion {
    criterion::Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}

/// Print a bench banner.
pub fn banner(what: &str, paper: &str) {
    println!("\n================================================================");
    println!("Reproducing {what}");
    println!("Paper reference: {paper}");
    println!("================================================================");
}

/// Path of the shared perf artifact: `BENCH_simcore.json` at the
/// workspace root, overridable via `BENCH_SIMCORE_OUT`.
pub fn bench_artifact_path() -> String {
    // detlint::allow(env-dependent): the artifact path is harness
    // plumbing (where results land), not measured behaviour.
    std::env::var("BENCH_SIMCORE_OUT")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_simcore.json").into())
}

/// Whether a bench's quick mode is requested via its `*_QUICK` switch
/// (e.g. `BENCH_SIMCORE_QUICK=1`). The single sanctioned env read for
/// mode switching: quick mode trims iteration counts, never results —
/// sections it produces are tagged `"mode": "quick"` and kept apart from
/// full-scale measurements by [`merge_bench_section`].
pub fn quick_mode(key: &str) -> bool {
    // detlint::allow(env-dependent): harness mode switch, not measured
    // behaviour; quick sections never overwrite full ones.
    std::env::var_os(key).is_some()
}

/// Merge one named section into the shared perf artifact.
///
/// The artifact is a flat JSON object of per-bench sections (plus a
/// `schema` tag). Each bench owns one key and rewrites only its own
/// section, so the `hotpath` and `dnsroute` measurements can run in any
/// order — or alone — and the uploaded artifact always carries every
/// section that has been produced. Returns the path written.
///
/// Sections are mode-aware: a `"mode": "quick"` section never overwrites
/// an existing `"mode": "full"` section at the same key. It lands beside
/// it, at `<key>_quick` — so a CI quick run can refresh its own data
/// point every push without ever clobbering the committed full-scale
/// measurement it is compared against.
pub fn merge_bench_section(key: &str, section_json: &str) -> std::io::Result<String> {
    let path = bench_artifact_path();
    merge_bench_section_at(&path, key, section_json)?;
    Ok(path)
}

/// [`merge_bench_section`] against an explicit artifact path (the public
/// entry point resolves the path from `BENCH_SIMCORE_OUT`).
pub fn merge_bench_section_at(path: &str, key: &str, section_json: &str) -> std::io::Result<()> {
    let mut sections = std::fs::read_to_string(path)
        .ok()
        .and_then(|s| parse_sections(&s))
        .unwrap_or_default();
    let existing_mode = sections
        .iter()
        .find(|(k, _)| k == key)
        .and_then(|(_, v)| section_mode(v));
    let target_key = match (section_mode(section_json), existing_mode) {
        // Quick must not clobber full: land beside it instead.
        (Some("quick"), Some("full")) => format!("{key}_quick"),
        _ => key.to_string(),
    };
    match sections.iter_mut().find(|(k, _)| *k == target_key) {
        Some((_, v)) => *v = section_json.to_string(),
        None => sections.push((target_key, section_json.to_string())),
    }
    let mut out = String::from("{\n  \"schema\": 2");
    for (k, v) in &sections {
        out.push_str(",\n  \"");
        out.push_str(k);
        out.push_str("\": ");
        out.push_str(v.trim());
    }
    out.push_str("\n}\n");
    std::fs::write(path, out)
}

/// The `"mode"` tag of a section, if it carries one. Sections are this
/// crate's own output format, so a targeted scan is exact: the key
/// appears once, as `"mode": "<value>"`.
fn section_mode(section: &str) -> Option<&str> {
    let rest = &section[section.find("\"mode\"")? + "\"mode\"".len()..];
    let rest = rest.trim_start().strip_prefix(':')?;
    let rest = rest.trim_start().strip_prefix('"')?;
    Some(&rest[..rest.find('"')?])
}

/// The `"sweeps"` rows of a scaling section, as `(shards, throughput)`
/// pairs — throughput being each row's first `*_per_second` field. Rows
/// missing either field are skipped.
pub fn section_sweeps(section: &str) -> Vec<(u32, f64)> {
    let mut rows = Vec::new();
    let Some(i) = section.find("\"sweeps\"") else {
        return rows;
    };
    let rest = &section[i..];
    let Some(open) = rest.find('[') else {
        return rows;
    };
    let Some(close) = rest[open..].find(']') else {
        return rows;
    };
    for chunk in rest[open + 1..open + close].split('{').skip(1) {
        let obj = chunk.split('}').next().unwrap_or("");
        let shards = obj
            .find("\"shards\"")
            .and_then(|j| number_after_colon(&obj[j..]));
        let throughput = obj
            .find("_per_second\"")
            .and_then(|j| number_after_colon(&obj[j..]));
        if let (Some(shards), Some(throughput)) = (shards, throughput) {
            rows.push((shards as u32, throughput));
        }
    }
    rows
}

/// A scaling section's K-scaling ratio: max-K throughput over min-K
/// throughput. `None` unless the section sweeps at least two distinct
/// shard counts with positive baseline throughput.
pub fn scaling_ratio(section: &str) -> Option<f64> {
    let sweeps = section_sweeps(section);
    let min = sweeps.iter().min_by_key(|(k, _)| *k)?;
    let max = sweeps.iter().max_by_key(|(k, _)| *k)?;
    (max.0 > min.0 && min.1 > 0.0).then(|| max.1 / min.1)
}

/// The steady-state throughput of a hotpath section: the
/// `"probes_per_second"` field inside its `"steady"` object. `None` for
/// sections without a steady block (e.g. scaling sweeps).
pub fn hotpath_steady_probes_per_sec(section: &str) -> Option<f64> {
    let rest = &section[section.find("\"steady\"")?..];
    let j = rest.find("\"probes_per_second\"")?;
    number_after_colon(&rest[j..])
}

fn number_after_colon(s: &str) -> Option<f64> {
    let rest = s[s.find(':')? + 1..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Minimal parser for the artifact's own output format: a top-level JSON
/// object tagged `"schema": 2` with string keys and balanced-brace
/// values. Anything unexpected — malformed input *or* the flat schema-1
/// format, whose top-level keys are measurements rather than sections —
/// yields `None` and the caller starts a fresh artifact. Public so the
/// `scaling_gate` binary can compare a fresh artifact against a baseline.
pub fn parse_sections(s: &str) -> Option<Vec<(String, String)>> {
    let b = s.as_bytes();
    let mut i = 0usize;
    fn skip_ws(b: &[u8], i: &mut usize) {
        while *i < b.len() && b[*i].is_ascii_whitespace() {
            *i += 1;
        }
    }
    skip_ws(b, &mut i);
    if i >= b.len() || b[i] != b'{' {
        return None;
    }
    i += 1;
    let mut schema_2 = false;
    let mut sections = Vec::new();
    loop {
        skip_ws(b, &mut i);
        if i < b.len() && b[i] == b'}' {
            return schema_2.then_some(sections);
        }
        if i >= b.len() || b[i] != b'"' {
            return None;
        }
        i += 1;
        let key_start = i;
        while i < b.len() && b[i] != b'"' {
            i += 1;
        }
        if i >= b.len() {
            return None;
        }
        let key = s[key_start..i].to_string();
        i += 1;
        skip_ws(b, &mut i);
        if i >= b.len() || b[i] != b':' {
            return None;
        }
        i += 1;
        skip_ws(b, &mut i);
        let value_start = i;
        let mut depth = 0i32;
        let mut in_str = false;
        let mut escaped = false;
        while i < b.len() {
            let c = b[i];
            if in_str {
                if escaped {
                    escaped = false;
                } else if c == b'\\' {
                    escaped = true;
                } else if c == b'"' {
                    in_str = false;
                }
            } else if c == b'"' {
                in_str = true;
            } else if c == b'{' || c == b'[' {
                depth += 1;
            } else if c == b'}' || c == b']' {
                if depth == 0 {
                    break;
                }
                depth -= 1;
            } else if c == b',' && depth == 0 {
                break;
            }
            i += 1;
        }
        if i >= b.len() {
            return None;
        }
        let value = s[value_start..i].trim().to_string();
        // `schema` is regenerated on every write, not a section — but it
        // must identify the sectioned format, or the old flat schema-1
        // keys would leak into the rewritten artifact as bogus sections.
        if key == "schema" {
            schema_2 = value == "2";
        } else {
            sections.push((key, value));
        }
        if b[i] == b',' {
            i += 1;
            continue;
        }
        // b[i] == b'}' closes the object.
        return schema_2.then_some(sections);
    }
}

#[cfg(test)]
mod tests {
    use super::{
        merge_bench_section_at, parse_sections, scaling_ratio, section_mode, section_sweeps,
    };

    fn artifact_keys(path: &str) -> Vec<String> {
        let doc = std::fs::read_to_string(path).unwrap();
        parse_sections(&doc)
            .expect("artifact parses")
            .into_iter()
            .map(|(k, _)| k)
            .collect()
    }

    fn section_of<'a>(sections: &'a [(String, String)], key: &str) -> &'a str {
        &sections.iter().find(|(k, _)| k == key).unwrap().1
    }

    #[test]
    fn quick_lands_beside_full_never_on_top_of_it() {
        let dir = std::env::temp_dir().join("bench_mode_merge_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("artifact.json");
        let path = path.to_str().unwrap();
        let _ = std::fs::remove_file(path);

        let full = "{ \"bench\": \"x\", \"mode\": \"full\", \"sweeps\": [] }";
        let quick = "{ \"bench\": \"x\", \"mode\": \"quick\", \"sweeps\": [] }";
        let quick2 = "{ \"bench\": \"x\", \"mode\": \"quick\", \"n\": 2 }";

        // A quick section with no full predecessor owns the base key…
        merge_bench_section_at(path, "dnsroute", quick).unwrap();
        assert_eq!(artifact_keys(path), ["dnsroute"]);
        // …and a full run overwrites it there.
        merge_bench_section_at(path, "dnsroute", full).unwrap();
        let doc = std::fs::read_to_string(path).unwrap();
        let sections = parse_sections(&doc).unwrap();
        assert_eq!(
            section_mode(section_of(&sections, "dnsroute")),
            Some("full")
        );

        // Quick after full: the full section survives untouched, the
        // quick data point lands at `<key>_quick`.
        merge_bench_section_at(path, "dnsroute", quick).unwrap();
        let doc = std::fs::read_to_string(path).unwrap();
        let sections = parse_sections(&doc).unwrap();
        assert_eq!(
            section_mode(section_of(&sections, "dnsroute")),
            Some("full")
        );
        assert_eq!(
            section_mode(section_of(&sections, "dnsroute_quick")),
            Some("quick")
        );

        // Repeated quick runs refresh `<key>_quick` in place.
        merge_bench_section_at(path, "dnsroute", quick2).unwrap();
        let doc = std::fs::read_to_string(path).unwrap();
        let sections = parse_sections(&doc).unwrap();
        assert_eq!(artifact_keys(path), ["dnsroute", "dnsroute_quick"]);
        assert!(section_of(&sections, "dnsroute_quick").contains("\"n\": 2"));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn sweep_rows_and_scaling_ratio_parse() {
        let section = "{ \"mode\": \"full\", \"sweeps\": [\n  { \"shards\": 1, \"traces_per_second\": 1000, \"elapsed_seconds\": 1.5 },\n  { \"shards\": 8, \"traces_per_second\": 3500, \"elapsed_seconds\": 0.4 }\n] }";
        assert_eq!(section_sweeps(section), vec![(1, 1000.0), (8, 3500.0)]);
        assert!((scaling_ratio(section).unwrap() - 3.5).abs() < 1e-9);
        assert_eq!(section_mode(section), Some("full"));
        // Degenerate sections yield no ratio rather than a bogus one.
        assert_eq!(scaling_ratio("{ \"sweeps\": [] }"), None);
        assert_eq!(
            scaling_ratio("{ \"sweeps\": [ { \"shards\": 2, \"x_per_second\": 5 } ] }"),
            None,
            "one shard count is not a scaling curve"
        );
    }

    #[test]
    fn hotpath_steady_throughput_parses() {
        use super::hotpath_steady_probes_per_sec;
        let section = "{ \"mode\": \"full\", \"answered_probes\": 26000, \"steady\": { \"probes_per_second\": 1345946, \"events_per_second\": 3830769 } }";
        assert!((hotpath_steady_probes_per_sec(section).unwrap() - 1_345_946.0).abs() < 1e-9);
        // No steady block, or a steady block without the field: no number.
        assert_eq!(hotpath_steady_probes_per_sec("{ \"sweeps\": [] }"), None);
        assert_eq!(
            hotpath_steady_probes_per_sec("{ \"steady\": { \"events_per_second\": 5 } }"),
            None
        );
    }

    #[test]
    fn sections_roundtrip() {
        let doc = "{\n  \"schema\": 2,\n  \"hotpath\": {\n    \"probes_per_second\": 1000,\n    \"nested\": { \"a\": [1, 2, 3], \"s\": \"b}r{ace\" }\n  },\n  \"dnsroute\": { \"traces_per_second\": 42.5 }\n}\n";
        let sections = parse_sections(doc).expect("parses");
        assert_eq!(sections.len(), 2, "schema dropped: {sections:?}");
        assert_eq!(sections[0].0, "hotpath");
        assert!(sections[0].1.contains("\"probes_per_second\": 1000"));
        assert_eq!(sections[1].0, "dnsroute");
        assert_eq!(sections[1].1, "{ \"traces_per_second\": 42.5 }");
    }

    #[test]
    fn garbage_yields_none() {
        assert_eq!(parse_sections(""), None);
        assert_eq!(parse_sections("not json"), None);
        assert_eq!(parse_sections("{ \"unterminated\": {"), None);
    }

    #[test]
    fn flat_schema1_artifact_discarded() {
        // The pre-section format: top-level keys are measurements. They
        // must not survive as sections of the rewritten artifact.
        let old = "{\n  \"schema\": 1,\n  \"bench\": \"micro_simcore/hotpath\",\n  \"steady\": { \"probes_per_second\": 985000 }\n}\n";
        assert_eq!(parse_sections(old), None);
        let untagged = "{ \"hotpath\": { \"a\": 1 } }";
        assert_eq!(parse_sections(untagged), None);
    }
}
