//! Shared helpers for the benchmark harness.
//!
//! Every bench regenerates one table or figure of the paper: it first
//! prints the reproduced artifact (the same rows/series the paper
//! reports), then measures the underlying pipeline with criterion.
//! Absolute numbers differ from the paper (the substrate is a simulator,
//! scaled down); the *shape* — who wins, by what factor, where crossovers
//! fall — is what EXPERIMENTS.md compares.

use inetgen::{CountrySelection, GenConfig, Internet};

/// The standard bench world: the full country table at 1:500 scale
/// (≈4.3k ODNS hosts). Deterministic.
pub fn bench_world() -> Internet {
    inetgen::generate(&GenConfig {
        scale: 500,
        ..GenConfig::default()
    })
}

/// A focused world for path experiments: the six headline countries at a
/// scale that yields hundreds of transparent forwarders.
pub fn path_world() -> Internet {
    inetgen::generate(&GenConfig {
        countries: CountrySelection::Codes(vec!["BRA", "IND", "USA", "TUR", "ARG", "IDN"]),
        scale: 1_000,
        dud_fraction: 0.0,
        ..GenConfig::default()
    })
}

/// A dense world where whole-/24 middleboxes materialize (Figure 8 needs
/// per-country populations in the hundreds).
pub fn density_world() -> Internet {
    inetgen::generate(&GenConfig::density_scale())
}

/// A tiny world for hot-loop measurement (criterion iterations rebuild
/// worlds, so they must be cheap).
pub fn tiny_world() -> Internet {
    inetgen::generate(&GenConfig {
        countries: CountrySelection::Codes(vec!["MUS", "FSM"]),
        scale: 1_000,
        dud_fraction: 0.0,
        ..GenConfig::default()
    })
}

/// Standard criterion settings: small samples, short measurement — the
/// pipelines under test are seconds-long end-to-end runs.
pub fn criterion() -> criterion::Criterion {
    criterion::Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}

/// Print a bench banner.
pub fn banner(what: &str, paper: &str) {
    println!("\n================================================================");
    println!("Reproducing {what}");
    println!("Paper reference: {paper}");
    println!("================================================================");
}
