//! CI gate for census recall under packet loss.
//!
//! Runs a small, fully deterministic resilience sweep — the same warm
//! shard worlds every time, fault verdicts keyed per flow from the
//! generation seed — and fails if the retried census no longer clears
//! the committed recall floor at the reference grid point (5 % loss,
//! 2 retransmissions). Because nothing in the sweep is sampled at run
//! time, any movement at all is a behaviour change in the pipeline, not
//! noise; the floor sits below the expected value only to leave room
//! for *intentional* world-generation changes to shift the planted set.
//!
//! The gate also pins the invariants the floor is meaningless without:
//! a clean world must reach full recall with zero retransmissions (the
//! retry layer must stay dormant when nothing is lost), retries must
//! never *reduce* recall, and precision must be exactly 1.0 in every
//! cell — loss may cost coverage, it must never fabricate a transparent
//! forwarder.
//!
//! Usage: `faultgate [floor]` (default 0.93)

use analysis::run_resilience_sweep;
use inetgen::{CountrySelection, GenConfig, ShardWorldCache};
use std::process::ExitCode;

/// Reference grid point: 5 % loss, 2 retransmissions.
const GATE_LOSS_PERMILLE: u32 = 50;
const GATE_RETRIES: u8 = 2;
const DEFAULT_FLOOR: f64 = 0.93;

fn main() -> ExitCode {
    let floor: f64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("floor must be a number"))
        .unwrap_or(DEFAULT_FLOOR);

    let config = GenConfig {
        countries: CountrySelection::Codes(vec!["BRA", "TUR", "MUS"]),
        scale: 2_000,
        dud_fraction: 0.0,
        ..GenConfig::default()
    };
    let mut cache = ShardWorldCache::new(config);
    let matrix = run_resilience_sweep(&mut cache, 2, &[0, GATE_LOSS_PERMILLE], &[0, GATE_RETRIES]);
    println!("faultgate: recall floor {floor} at 5% loss, 2 retries\n");
    println!("{}", matrix.render().render());

    let mut failed = false;
    for ((loss, retries), cell) in matrix.cells.iter() {
        if cell.false_positives != 0 {
            failed = true;
            println!(
                "  FAIL — {} false positives at {loss}‰/{retries} retries: loss fabricated forwarders",
                cell.false_positives
            );
        }
    }

    let clean = matrix.cell(0, GATE_RETRIES).expect("clean point swept");
    if clean.recall() < 1.0 || clean.retransmits_sent != 0 {
        failed = true;
        println!(
            "  FAIL — clean world: recall {:.3}, {} retransmits (want 1.000 and 0: the retry layer must stay dormant without loss)",
            clean.recall(),
            clean.retransmits_sent
        );
    }

    let unretried = matrix
        .cell(GATE_LOSS_PERMILLE, 0)
        .expect("unretried point swept");
    let gated = matrix
        .cell(GATE_LOSS_PERMILLE, GATE_RETRIES)
        .expect("gate point swept");
    if gated.recall() < unretried.recall() {
        failed = true;
        println!(
            "  FAIL — retries reduced recall: {:.3} with {} retries vs {:.3} without",
            gated.recall(),
            GATE_RETRIES,
            unretried.recall()
        );
    }
    if gated.recall() >= floor {
        println!(
            "  OK — recall {:.3} at 5% loss with {} retries (floor {floor}, unretried {:.3})",
            gated.recall(),
            GATE_RETRIES,
            unretried.recall()
        );
    } else {
        failed = true;
        println!(
            "  FAIL — recall {:.3} at 5% loss with {} retries fell below the committed floor {floor}",
            gated.recall(),
            GATE_RETRIES
        );
    }

    if failed {
        eprintln!("faultgate: census resilience regressed");
        return ExitCode::FAILURE;
    }
    println!("\nfaultgate: recall holds under loss");
    ExitCode::SUCCESS
}
