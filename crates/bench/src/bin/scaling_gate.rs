//! CI gate for shard-count scaling and hot-path throughput regressions.
//!
//! Compares a freshly measured `BENCH_simcore.json` against a recorded
//! baseline copy: for every fresh section that carries a `"sweeps"`
//! scaling curve, the K-scaling ratio (max-K throughput over min-K
//! throughput) must stay above `floor × baseline_ratio`. The same floor
//! then gates the steady hot path: the fresh `hotpath_quick` (or
//! `hotpath`) probes/s must stay above `floor ×` the committed baseline's
//! probes/s, preferring the baseline section measured the same way —
//! quick compares against quick, full against full — and falling back
//! to the other mode only when no like-for-like section was committed.
//! The floor (default 0.7)
//! absorbs shared-runner noise; a real collapse — sharded sweeps falling
//! back to flat, or the event engine regressing to pre-wheel cost — blows
//! through it.
//!
//! Sections without a baseline counterpart (first run of a new bench) or
//! without the compared figure are reported and skipped, so adding a
//! bench never breaks the gate.
//!
//! Usage: `scaling_gate <fresh_artifact> <baseline_artifact> [floor]`

use bench::{hotpath_steady_probes_per_sec, parse_sections, scaling_ratio};
use std::process::ExitCode;

fn load_sections(path: &str) -> Result<Vec<(String, String)>, String> {
    let doc = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    parse_sections(&doc).ok_or_else(|| format!("{path}: not a schema-2 sectioned artifact"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (fresh_path, baseline_path) = match args.as_slice() {
        [f, b] | [f, b, _] => (f.as_str(), b.as_str()),
        _ => {
            eprintln!("usage: scaling_gate <fresh_artifact> <baseline_artifact> [floor]");
            return ExitCode::FAILURE;
        }
    };
    let floor: f64 = args
        .get(2)
        .map(|s| s.parse().expect("floor must be a number"))
        .unwrap_or(0.7);

    let fresh = match load_sections(fresh_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("scaling_gate: cannot read fresh artifact: {e}");
            return ExitCode::FAILURE;
        }
    };
    let baseline = match load_sections(baseline_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("scaling_gate: cannot read baseline artifact: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!("scaling gate: fresh {fresh_path} vs baseline {baseline_path} (floor {floor})");
    let mut compared = 0u32;
    let mut failed = false;
    for (key, section) in &fresh {
        let Some(fresh_ratio) = scaling_ratio(section) else {
            println!("  {key}: no scaling curve — skipped");
            continue;
        };
        let base_ratio = baseline
            .iter()
            .find(|(k, _)| k == key)
            .and_then(|(_, s)| scaling_ratio(s));
        let Some(base_ratio) = base_ratio else {
            println!("  {key}: fresh ratio ×{fresh_ratio:.2}, no baseline — skipped");
            continue;
        };
        compared += 1;
        let required = floor * base_ratio;
        if fresh_ratio >= required {
            println!(
                "  {key}: OK — fresh ×{fresh_ratio:.2} vs baseline ×{base_ratio:.2} (≥ ×{required:.2})"
            );
        } else {
            failed = true;
            println!(
                "  {key}: REGRESSION — fresh ×{fresh_ratio:.2} < ×{required:.2} (floor {floor} of baseline ×{base_ratio:.2})"
            );
        }
    }
    // Hot-path throughput gate: prefer the section a CI quick run just
    // refreshed (`hotpath_quick`), falling back to a full fresh `hotpath`.
    // The baseline prefers the section measured the same way as the fresh
    // one — quick mode runs far fewer probes and lands measurably below a
    // full steady-state number, so quick compares against quick.
    let steady_of = |sections: &[(String, String)], order: [&str; 2]| {
        order.iter().find_map(|key| {
            sections
                .iter()
                .find(|(k, _)| k == key)
                .and_then(|(_, s)| hotpath_steady_probes_per_sec(s))
                .map(|v| (key.to_string(), v))
        })
    };
    let fresh_hot = steady_of(&fresh, ["hotpath_quick", "hotpath"]);
    let base_order = match &fresh_hot {
        Some((key, _)) if key == "hotpath_quick" => ["hotpath_quick", "hotpath"],
        _ => ["hotpath", "hotpath_quick"],
    };
    match (fresh_hot, steady_of(&baseline, base_order)) {
        (Some((fresh_key, fresh_pps)), Some((base_key, base_pps))) if base_pps > 0.0 => {
            compared += 1;
            let required = floor * base_pps;
            if fresh_pps >= required {
                println!(
                    "  hotpath: OK — fresh {fresh_key} {fresh_pps:.0} probes/s vs baseline {base_key} {base_pps:.0} (≥ {required:.0})"
                );
            } else {
                failed = true;
                println!(
                    "  hotpath: REGRESSION — fresh {fresh_key} {fresh_pps:.0} probes/s < {required:.0} (floor {floor} of baseline {base_key} {base_pps:.0})"
                );
            }
        }
        (fresh_hot, _) => {
            let side = if fresh_hot.is_none() {
                "fresh"
            } else {
                "baseline"
            };
            println!("  hotpath: no steady probes/s in {side} artifact — skipped");
        }
    }
    if failed {
        eprintln!("scaling_gate: throughput regressed");
        return ExitCode::FAILURE;
    }
    println!("scaling_gate: {compared} section(s) compared, none regressed");
    ExitCode::SUCCESS
}
