//! CI gate for shard-count scaling regressions.
//!
//! Compares a freshly measured `BENCH_simcore.json` against a recorded
//! baseline copy: for every fresh section that carries a `"sweeps"`
//! scaling curve, the K-scaling ratio (max-K throughput over min-K
//! throughput) must stay above `floor × baseline_ratio`. The floor
//! (default 0.7) absorbs shared-runner noise; a real scaling collapse —
//! sharded sweeps falling back to flat — blows through it.
//!
//! Sections without a baseline counterpart (first run of a new bench) or
//! without a scaling curve (e.g. `hotpath`) are reported and skipped, so
//! adding a bench never breaks the gate.
//!
//! Usage: `scaling_gate <fresh_artifact> <baseline_artifact> [floor]`

use bench::{parse_sections, scaling_ratio};
use std::process::ExitCode;

fn load_sections(path: &str) -> Result<Vec<(String, String)>, String> {
    let doc = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    parse_sections(&doc).ok_or_else(|| format!("{path}: not a schema-2 sectioned artifact"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (fresh_path, baseline_path) = match args.as_slice() {
        [f, b] | [f, b, _] => (f.as_str(), b.as_str()),
        _ => {
            eprintln!("usage: scaling_gate <fresh_artifact> <baseline_artifact> [floor]");
            return ExitCode::FAILURE;
        }
    };
    let floor: f64 = args
        .get(2)
        .map(|s| s.parse().expect("floor must be a number"))
        .unwrap_or(0.7);

    let fresh = match load_sections(fresh_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("scaling_gate: cannot read fresh artifact: {e}");
            return ExitCode::FAILURE;
        }
    };
    let baseline = match load_sections(baseline_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("scaling_gate: cannot read baseline artifact: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!("scaling gate: fresh {fresh_path} vs baseline {baseline_path} (floor {floor})");
    let mut compared = 0u32;
    let mut failed = false;
    for (key, section) in &fresh {
        let Some(fresh_ratio) = scaling_ratio(section) else {
            println!("  {key}: no scaling curve — skipped");
            continue;
        };
        let base_ratio = baseline
            .iter()
            .find(|(k, _)| k == key)
            .and_then(|(_, s)| scaling_ratio(s));
        let Some(base_ratio) = base_ratio else {
            println!("  {key}: fresh ratio ×{fresh_ratio:.2}, no baseline — skipped");
            continue;
        };
        compared += 1;
        let required = floor * base_ratio;
        if fresh_ratio >= required {
            println!(
                "  {key}: OK — fresh ×{fresh_ratio:.2} vs baseline ×{base_ratio:.2} (≥ ×{required:.2})"
            );
        } else {
            failed = true;
            println!(
                "  {key}: REGRESSION — fresh ×{fresh_ratio:.2} < ×{required:.2} (floor {floor} of baseline ×{base_ratio:.2})"
            );
        }
    }
    if failed {
        eprintln!("scaling_gate: K-scaling regressed");
        return ExitCode::FAILURE;
    }
    println!("scaling_gate: {compared} section(s) compared, none regressed");
    ExitCode::SUCCESS
}
