//! Table 4: the top countries by "other" (non-big-4) resolver share, with
//! the indirect-consolidation split.
//!
//! Paper: Turkey's ~53k transparent forwarders funnel into effectively one
//! local resolver (0.3 % indirect); India/Brazil's "other" share is ~48 %
//! forwarding chains that still end at big-4 resolvers.

use bench::{banner, bench_world, criterion, tiny_world};
use criterion::{black_box, Criterion};
use scanner::ClassifierConfig;

fn regenerate() {
    banner(
        "Table 4 — top countries by 'other' share with indirect consolidation",
        "TUR 52,663 transp / 0.3% indirect; IND 48%; BRA 48%; USA 18%",
    );
    let mut internet = bench_world();
    let census = analysis::run_census(&mut internet, &ClassifierConfig::default());
    println!(
        "{}",
        analysis::report::table4(&census, &internet.geo, 10).render()
    );

    let rows = analysis::table4_other_share(&census, &internet.geo, 10);
    if let Some(tur) = rows.iter().find(|r| r.country == "TUR") {
        println!(
            "Turkey: {} 'other' transparent forwarders via {} distinct local resolver(s), {:.1}% indirect (paper: ~1 resolver, 0.3%)",
            tur.other_transparent,
            tur.distinct_other_resolvers,
            tur.indirect_share * 100.0
        );
        assert!(
            tur.distinct_other_resolvers <= 3,
            "Turkey's consolidation onto very few local resolvers must reproduce"
        );
    }
    let chains = rows
        .iter()
        .find(|r| r.country == "BRA" || r.country == "IND");
    if let Some(c) = chains {
        assert!(
            c.indirect_share > 0.2,
            "{}: forwarding chains must show substantial indirect consolidation, got {:.2}",
            c.country,
            c.indirect_share
        );
    }
}

fn bench_table4(c: &mut Criterion) {
    let mut internet = tiny_world();
    let census = analysis::run_census(&mut internet, &ClassifierConfig::default());
    let geo = internet.geo;
    let mut group = c.benchmark_group("table4");
    group.bench_function("other_share_aggregation", |b| {
        b.iter(|| black_box(analysis::table4_other_share(&census, &geo, 10).len()))
    });
    group.finish();
}

fn main() {
    regenerate();
    let mut c = criterion();
    bench_table4(&mut c);
    c.final_summary();
}
