//! Figure 5: popularity of the public resolver projects among transparent
//! forwarders, per country.
//!
//! Paper: Google and Cloudflare dominate; almost all Indian transparent
//! forwarders relay to Google; Turkey/Poland/China/France lean on local
//! resolvers instead ("other").

use bench::{banner, bench_world, criterion, tiny_world};
use criterion::{black_box, Criterion};
use odns::ResolverProject;
use scanner::ClassifierConfig;

fn regenerate() {
    banner(
        "Figure 5 — resolver projects used by transparent forwarders",
        "Google & Cloudflare most common; India ≈ all-Google; Turkey ≈ all-other",
    );
    let mut internet = bench_world();
    let census = analysis::run_census(&mut internet, &ClassifierConfig::default());
    println!("{}", analysis::report::figure5(&census, 15).render());
    println!("bar legend: G=Google C=Cloudflare q=Quad9 o=OpenDNS .=other");

    let f5 = analysis::figure5_by_country(&census);
    let ind = f5.get("IND").expect("India in census");
    let g = ind.share(analysis::ResolverSource::Project(ResolverProject::Google));
    assert!(
        g > 0.75,
        "India's Google share {g:.2} must reproduce the near-total reliance"
    );
    let tur = f5.get("TUR").expect("Turkey in census");
    let other = tur.share(analysis::ResolverSource::Other);
    assert!(
        other > 0.75,
        "Turkey's 'other' share {other:.2} must dominate"
    );
    println!(
        "\nIND Google share {:.0}% (paper: almost all)   TUR other share {:.0}% (paper: ~90%)",
        g * 100.0,
        other * 100.0
    );
}

fn bench_fig5(c: &mut Criterion) {
    let mut internet = tiny_world();
    let census = analysis::run_census(&mut internet, &ClassifierConfig::default());
    let mut group = c.benchmark_group("fig5");
    group.bench_function("project_attribution", |b| {
        b.iter(|| black_box(analysis::figure5_by_country(&census).len()))
    });
    group.finish();
}

fn main() {
    regenerate();
    let mut c = criterion();
    bench_fig5(&mut c);
    c.final_summary();
}
