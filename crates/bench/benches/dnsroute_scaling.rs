//! Shard-count scaling of the sharded DNSRoute++ sweep.
//!
//! The §5 sweep traces *every* transparent forwarder the census found —
//! full coverage is what both Figure 6 and attack-surface mapping need.
//! `analysis::run_dnsroute_cached` drives one census + sweep per shard
//! world over a warm [`inetgen::ShardWorldCache`]: worlds generate once
//! per shard count, then every measured sweep resets and reuses them. The
//! timed region is therefore the *sweep* — scan, correlate + classify
//! in-worker, trace — which is the unit that repeats in a real campaign
//! (generate once, scan many), not world construction.
//!
//! Trace content is verified identical across the K sweep (the engine's
//! determinism contract). The headline measurement reports warm traces/s
//! per K plus the one-off generation cost, and merges a `dnsroute`
//! section into `BENCH_simcore.json` so the perf artifact carries the
//! sweep trajectory next to the hot-path numbers. Set `DNSROUTE_QUICK=1`
//! for a fast CI-friendly run (it lands at `dnsroute_quick`, never
//! overwriting a committed full section).

use bench::{banner, criterion, merge_bench_section};
use criterion::{black_box, Criterion};
use inetgen::{CountrySelection, GenConfig, ShardWorldCache};
use scanner::ClassifierConfig;
use std::time::Instant;

/// The six headline countries; `scale` trades forwarder count for time.
fn sweep_config(scale: u32) -> GenConfig {
    GenConfig {
        countries: CountrySelection::Codes(vec!["BRA", "IND", "USA", "TUR", "ARG", "IDN"]),
        scale,
        dud_fraction: 0.0,
        ..GenConfig::default()
    }
}

// Wall-clock is the measured quantity here (clippy.toml bans it elsewhere).
#[allow(clippy::disallowed_methods)]
fn headline_sweep(quick: bool) {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    banner(
        "dnsroute scaling — the sharded parallel DNSRoute++ sweep",
        "method of §5 at full-coverage scale (engine scaling, no paper artifact)",
    );
    println!("machine: {cores} worker thread(s) available\n");

    // `scale` is a population *denominator*: quick mode (CI) uses a small
    // scale-2000 world (~230 forwarders, milliseconds per K) while the
    // full run sweeps a scale-100 world (~4.5k forwarders) so per-K times
    // are long enough for the locality/parallelism effects to dominate
    // measurement noise.
    let config = sweep_config(if quick { 2_000 } else { 100 });
    let ks: &[u32] = if quick { &[1, 2] } else { &[1, 2, 4, 8] };
    let reps = if quick { 1 } else { 3 };

    let mut baseline: Option<(f64, usize, usize)> = None;
    let mut sweep_rows = String::new();
    for &k in ks {
        // Generate the shard worlds once; the first sweep also warms
        // route caches. Neither is part of the per-sweep timed region.
        let mut cache = ShardWorldCache::new(config.clone());
        let t_gen = Instant::now();
        let sweep = analysis::run_dnsroute_cached(&mut cache, k, &ClassifierConfig::default());
        let gen_secs = t_gen.elapsed().as_secs_f64();
        let traced = sweep.traces.len();
        let (_, stats) = sweep.sanitized();

        // The measured unit: warm sweeps over cached, reset worlds.
        let t0 = Instant::now();
        for _ in 0..reps {
            let warm = analysis::run_dnsroute_cached(&mut cache, k, &ClassifierConfig::default());
            assert_eq!(warm.traces.len(), traced, "warm K={k} sweep diverged");
        }
        let secs = t0.elapsed().as_secs_f64() / reps as f64;
        let traces_per_sec = traced as f64 / secs;

        match baseline {
            None => {
                assert!(traced > 0, "sweep must trace forwarders");
                println!(
                    "K=1: {traced} forwarders traced ({} paths kept), warm sweep {secs:.3}s — {traces_per_sec:.0} traces/s (gen+first {gen_secs:.2}s)  [baseline]",
                    stats.kept
                );
                baseline = Some((secs, traced, stats.kept));
            }
            Some((base_secs, base_traced, base_kept)) => {
                assert_eq!(traced, base_traced, "K={k} changed the trace count");
                assert_eq!(stats.kept, base_kept, "K={k} changed the sanitized set");
                println!(
                    "K={k}: {traced} forwarders traced ({} paths kept), warm sweep {secs:.3}s — {traces_per_sec:.0} traces/s (gen+first {gen_secs:.2}s)  speedup ×{:.2}",
                    stats.kept,
                    base_secs / secs
                );
            }
        }
        if !sweep_rows.is_empty() {
            sweep_rows.push_str(",\n      ");
        }
        sweep_rows.push_str(&format!(
            "{{ \"shards\": {k}, \"traces_per_second\": {traces_per_sec:.0}, \"warm_sweep_seconds\": {secs:.6}, \"generate_seconds\": {gen_secs:.6} }}"
        ));
    }
    let (_, traced, kept) = baseline.expect("at least one K measured");

    let section = format!(
        "{{\n    \"bench\": \"dnsroute_scaling\",\n    \"mode\": \"{}\",\n    \"timed_region\": \"warm sweep over cached shard worlds ({} reps)\",\n    \"world\": \"6 headline countries, scale {}\",\n    \"traced_forwarders\": {},\n    \"sanitized_paths\": {},\n    \"sweeps\": [\n      {}\n    ]\n  }}",
        if quick { "quick" } else { "full" },
        reps,
        config.scale,
        traced,
        kept,
        sweep_rows,
    );
    match merge_bench_section("dnsroute", &section) {
        Ok(path) => println!("\ndnsroute: wrote section \"dnsroute\" to {path}"),
        Err(e) => eprintln!("dnsroute: could not write artifact: {e}"),
    }
}

fn bench_shard_counts(c: &mut Criterion) {
    // A tiny two-country world keeps criterion iterations sub-second;
    // shape matches the headline sweep (warm census → trace per shard).
    let config = GenConfig {
        countries: CountrySelection::Codes(vec!["MUS", "FSM"]),
        scale: 1_000,
        dud_fraction: 0.0,
        ..GenConfig::default()
    };
    let mut group = c.benchmark_group("dnsroute_scaling");
    for k in [1u32, 2] {
        let mut cache = ShardWorldCache::new(config.clone());
        group.bench_function(format!("warm_sweep_scale1000_k{k}"), |b| {
            b.iter(|| {
                let sweep =
                    analysis::run_dnsroute_cached(&mut cache, k, &ClassifierConfig::default());
                black_box(sweep.traces.len())
            })
        });
    }
    group.finish();
}

fn main() {
    let quick = bench::quick_mode("DNSROUTE_QUICK");
    headline_sweep(quick);
    if !quick {
        let mut c = criterion();
        bench_shard_counts(&mut c);
        c.final_summary();
    }
}
