//! Figure 8: transparent forwarders per covering /24 prefix.
//!
//! Paper: 26 % of transparent forwarders live in sparsely populated
//! prefixes (≤25 per /24 — individual CPE customers), 36 % in completely
//! populated ones (≥254 — a middlebox serving the whole network); 806
//! prefixes are completely populated.

use bench::{banner, criterion, density_world, tiny_world};
use criterion::{black_box, Criterion};
use scanner::ClassifierConfig;

fn regenerate() {
    banner(
        "Figure 8 — /24 host density of transparent forwarders",
        "26% in sparse (≤25), 36% in full (≥254) prefixes; 806 full prefixes",
    );
    let mut internet = density_world();
    let census = analysis::run_census(&mut internet, &ClassifierConfig::default());
    let (table, density) = analysis::report::figure8(&census);
    println!("{}", table.render());
    println!(
        "{}",
        analysis::chart::render_cdf("forwarders per /24", &density.cdf(), 56, 10)
    );

    let sparse = density.share_in_density_at_most(analysis::density::SPARSE_MAX);
    let full = density.share_in_density_at_least(analysis::density::FULL_MIN);
    println!(
        "sparse share {:.0}% (paper 26%)   full share {:.0}% (paper 36%)   full prefixes {} (paper 806, scaled ≈ {})",
        sparse * 100.0,
        full * 100.0,
        density.full_prefixes(),
        806 / 60
    );
    assert!((0.10..0.45).contains(&sparse), "sparse share {sparse:.2}");
    assert!(
        full > 0.15,
        "full-prefix share {full:.2} must be substantial (paper: 36%; scaled worlds \
         under-shoot because countries smaller than one /24 cannot host a middlebox)"
    );
    assert!(
        density.full_prefixes() > 0,
        "middleboxes must appear at this scale"
    );

    // §6 device attribution belongs to this world: half the MikroTik
    // population sits in whole-/24 middleboxes, so the ~23 % share only
    // converges once middleboxes exist.
    let sample: Vec<_> = census
        .transparent_targets()
        .into_iter()
        .take(1_500)
        .collect();
    let evidence = scanner::run_fingerprint_scan(
        &mut internet.sim,
        internet.fixtures.campaign_scanners[1],
        scanner::FingerprintConfig::new(sample.clone()),
    );
    let vendors = analysis::vendor_summary(&evidence, &sample);
    let mikrotik = vendors.share(odns::Vendor::MikroTik);
    println!(
        "device fingerprinting at density scale: MikroTik {:.1}% of transparent forwarders (paper: ~23%)",
        mikrotik * 100.0
    );
    assert!(
        (0.12..0.35).contains(&mikrotik),
        "MikroTik share {mikrotik:.2}"
    );
}

fn bench_density(c: &mut Criterion) {
    let mut internet = tiny_world();
    let census = analysis::run_census(&mut internet, &ClassifierConfig::default());
    let ips = census.transparent_targets();
    let mut group = c.benchmark_group("fig8");
    group.bench_function("density_histogram", |b| {
        b.iter(|| {
            let d = analysis::PrefixDensity::from_ips(ips.iter().copied());
            black_box(d.prefix_count())
        })
    });
    group.finish();
}

fn main() {
    regenerate();
    let mut c = criterion();
    bench_density(&mut c);
    c.final_summary();
}
