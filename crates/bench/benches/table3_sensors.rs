//! Table 3: detection of the three honeypot sensors by the three popular
//! scanning campaigns.
//!
//! Paper: Shadowserver finds IP1 and IP3 (the interior sensor's *reply*
//! address); Censys and Shodan find only IP1; nobody finds IP2 or IP4.

use bench::{banner, criterion};
use criterion::{black_box, Criterion};
use inetgen::{CountrySelection, GenConfig};
use scanner::{run_campaign, Campaign, CampaignConfig, HoneypotSensor, SensorKind};

fn sensor_world() -> inetgen::Internet {
    let config = GenConfig {
        countries: CountrySelection::Codes(vec!["FSM"]),
        scale: 2_000,
        dud_fraction: 0.0,
        ..GenConfig::default()
    };
    let mut internet = inetgen::generate(&config);
    let a = internet.fixtures.sensor_addrs;
    let google = odns::ResolverProject::Google.service_ip();
    internet.sim.install(
        internet.fixtures.sensor1,
        HoneypotSensor::new(SensorKind::RecursiveResolver, google),
    );
    internet.sim.install(
        internet.fixtures.sensor2,
        HoneypotSensor::new(SensorKind::InteriorForwarder { reply_from: a.ip3 }, google),
    );
    internet.sim.install(
        internet.fixtures.sensor3,
        HoneypotSensor::new(SensorKind::ExteriorForwarder, google),
    );
    internet
}

fn regenerate() {
    banner(
        "Table 3 — detection of our DNS sensors by popular scans",
        "Shadowserver: IP1 ✓ IP3 ✓; Censys/Shodan: IP1 only",
    );
    let mut t = analysis::TextTable::new(["Scanner", "IP1", "IP2", "IP3", "IP4"]);
    let mut expected_rows = 0;
    for campaign in Campaign::all() {
        let mut internet = sensor_world();
        let a = internet.fixtures.sensor_addrs;
        let report = run_campaign(
            &mut internet.sim,
            internet.fixtures.campaign_scanners[0],
            CampaignConfig::new(campaign, vec![a.ip1, a.ip2, a.ip3, a.ip4]),
        );
        let mark = |b: bool| if b { "yes" } else { "-" };
        let row = (
            report.odns.contains(&a.ip1),
            report.odns.contains(&a.ip2),
            report.odns.contains(&a.ip3),
            report.odns.contains(&a.ip4),
        );
        t.row([
            campaign.name().to_string(),
            mark(row.0).to_string(),
            mark(row.1).to_string(),
            mark(row.2).to_string(),
            mark(row.3).to_string(),
        ]);
        let expected = match campaign {
            Campaign::Shadowserver => (true, false, true, false),
            Campaign::Censys | Campaign::Shodan => (true, false, false, false),
        };
        assert_eq!(row, expected, "{campaign} deviates from Table 3");
        expected_rows += 1;
    }
    println!("{}", t.render());
    println!("matrix matches the paper for all {expected_rows} campaigns \u{2713}");
}

fn bench_campaigns(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3");
    group.bench_function("campaign_pass_over_sensors", |b| {
        b.iter(|| {
            let mut internet = sensor_world();
            let a = internet.fixtures.sensor_addrs;
            let report = run_campaign(
                &mut internet.sim,
                internet.fixtures.campaign_scanners[0],
                CampaignConfig::new(Campaign::Shadowserver, vec![a.ip1, a.ip2, a.ip3, a.ip4]),
            );
            black_box(report.odns.len())
        })
    });
    group.finish();
}

fn main() {
    regenerate();
    let mut c = criterion();
    bench_campaigns(&mut c);
    c.final_summary();
}
