//! Shard-count scaling of the census engine.
//!
//! Sweeps K over a large (≥50 k-target) census and reports wall-clock
//! time and speedup versus K=1, then measures a smaller repeatable
//! configuration with criterion. Two effects compound:
//!
//! * **parallelism** — shards run on a worker-thread pool, so on an
//!   N-core machine up to N shards progress at once;
//! * **locality** — even on one core, K smaller simulators beat one big
//!   one: the event heap's `log E` factor shrinks, and per-shard routing
//!   caches and host tables stay small and hot.
//!
//! Classification counts are verified identical across the sweep — the
//! engine's determinism contract — so every measured configuration does
//! exactly the same logical work.

use bench::{banner, criterion};
use criterion::{black_box, Criterion};
use inetgen::GenConfig;
use scanner::{ClassifierConfig, OdnsClass};
use std::time::Instant;

/// ≥50 k scan targets: 2.125 M ODNS hosts at 1:40 plus 10 % duds.
const HEADLINE_SCALE: u32 = 40;

// Wall-clock is the measured quantity here (clippy.toml bans it elsewhere).
#[allow(clippy::disallowed_methods)]
fn headline_sweep() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    banner(
        "shard scaling — the sharded parallel census engine",
        "engine scaling (no paper artifact); method of §4.1 at census scale",
    );
    println!("machine: {cores} worker thread(s) available\n");

    let config = GenConfig {
        scale: HEADLINE_SCALE,
        ..GenConfig::default()
    };
    let mut baseline: Option<(f64, usize, usize)> = None;
    for k in [1u32, 2, 4, 8] {
        let t0 = Instant::now();
        let census = analysis::run_census_sharded(&config, k, &ClassifierConfig::default());
        let secs = t0.elapsed().as_secs_f64();
        let targets = census.rows.len();
        let transparent = census.count(OdnsClass::TransparentForwarder);
        let odns = census.odns_total();
        match baseline {
            None => {
                assert!(
                    targets >= 50_000,
                    "headline census must probe ≥50k targets, got {targets}"
                );
                println!(
                    "K=1: {targets} targets, {odns} ODNS ({transparent} transparent) in {secs:.2}s  [baseline]"
                );
                baseline = Some((secs, odns, transparent));
            }
            Some((base_secs, base_odns, base_transparent)) => {
                assert_eq!(odns, base_odns, "K={k} changed ODNS count");
                assert_eq!(
                    transparent, base_transparent,
                    "K={k} changed transparent count"
                );
                println!(
                    "K={k}: {targets} targets, {odns} ODNS ({transparent} transparent) in {secs:.2}s  speedup ×{:.2}",
                    base_secs / secs
                );
            }
        }
    }
}

fn bench_shard_counts(c: &mut Criterion) {
    // A smaller world keeps criterion iterations in the hundreds of
    // milliseconds; shape matches the headline sweep.
    let config = GenConfig {
        scale: 400,
        ..GenConfig::default()
    };
    let mut group = c.benchmark_group("shard_scaling");
    for k in [1u32, 2, 4, 8] {
        group.bench_function(format!("census_scale400_k{k}"), |b| {
            b.iter(|| {
                let census = analysis::run_census_sharded(&config, k, &ClassifierConfig::default());
                black_box(census.odns_total())
            })
        });
    }
    group.finish();
}

fn main() {
    headline_sweep();
    let mut c = criterion();
    bench_shard_counts(&mut c);
    c.final_summary();
}
