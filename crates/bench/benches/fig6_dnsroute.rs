//! Figure 6: DNSRoute++ path lengths from transparent forwarders to their
//! resolvers, per project — plus the §5 AS-relationship inference.
//!
//! Paper: Cloudflare 6.3 mean hops < Google 7.9 < OpenDNS 9.3; 62 % of
//! usable paths have AS_in == AS_out; 41 previously-unclassified
//! provider-customer pairs discovered.

use bench::{banner, criterion, path_world};
use criterion::{black_box, Criterion};
use dnsroute::{run_dnsroute, sanitize, DnsRouteConfig};
use odns::ResolverProject;
use scanner::ClassifierConfig;
use std::collections::BTreeSet;

fn regenerate() {
    banner(
        "Figure 6 — path length forwarder → resolver per project",
        "Cloudflare 6.3 < Google 7.9 < OpenDNS 9.3 mean IP hops; AS_in==AS_out on 62%",
    );
    let mut internet = path_world();
    let census = analysis::run_census(&mut internet, &ClassifierConfig::default());
    let targets = census.transparent_targets();
    println!("tracing {} transparent forwarders...", targets.len());
    let traces = run_dnsroute(
        &mut internet.sim,
        internet.fixtures.scanner,
        DnsRouteConfig::new(targets),
    );
    let (paths, stats) = sanitize(&traces);
    println!(
        "sanitization: kept {} of {} traces",
        stats.kept,
        stats.total()
    );

    let (projects, other) = analysis::figure6_by_project(&paths, &internet.geo);
    let mut t =
        analysis::TextTable::new(["Project", "Paths", "Fwd ASNs", "Mean hops", "Median", "p90"]);
    for p in &projects {
        let cdf = p.cdf();
        t.row([
            p.project.name().to_string(),
            p.hop_counts.len().to_string(),
            p.asn_count.to_string(),
            format!("{:.1}", p.mean_hops()),
            format!("{:.0}", cdf.median().unwrap_or(0.0)),
            format!("{:.0}", cdf.quantile(0.9).unwrap_or(0.0)),
        ]);
    }
    t.row([
        "(other/local)".to_string(),
        other.len().to_string(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
    ]);
    println!("{}", t.render());
    for p in &projects {
        println!(
            "{}",
            analysis::chart::render_cdf(p.project.name(), &p.cdf(), 56, 8)
        );
    }

    let mean = |proj: ResolverProject| -> f64 {
        projects
            .iter()
            .find(|p| p.project == proj)
            .map(|p| p.mean_hops())
            .unwrap_or(f64::NAN)
    };
    let (cf, g, od) = (
        mean(ResolverProject::Cloudflare),
        mean(ResolverProject::Google),
        mean(ResolverProject::OpenDns),
    );
    assert!(
        cf < g && g < od,
        "ordering must reproduce: {cf:.1} < {g:.1} < {od:.1}"
    );
    println!(
        "means: Cloudflare {cf:.1} < Google {g:.1} < OpenDNS {od:.1}  (paper: 6.3 < 7.9 < 9.3)"
    );

    let truth: Vec<(u32, u32)> = internet.sim.topology().provider_customer_pairs().to_vec();
    let known: BTreeSet<(u32, u32)> = truth.iter().take(truth.len() * 85 / 100).copied().collect();
    let (report, known_hits, new_pairs) =
        analysis::as_relationship_report(&paths, &internet.geo, &known);
    println!(
        "\nAS relationships: {} usable paths, AS_in==AS_out {:.0}% (paper 62%), {} inferred pairs ({} known, {} new — paper: 41 new)",
        report.usable_paths,
        report.matching_share() * 100.0,
        report.inferred.len(),
        known_hits,
        new_pairs
    );
}

fn bench_fig6(c: &mut Criterion) {
    // One shared world; bench sanitize + inference on pre-collected traces.
    let mut internet = path_world();
    let census = analysis::run_census(&mut internet, &ClassifierConfig::default());
    let targets: Vec<_> = census.transparent_targets().into_iter().take(150).collect();
    let traces = run_dnsroute(
        &mut internet.sim,
        internet.fixtures.scanner,
        DnsRouteConfig::new(targets),
    );
    let geo = internet.geo;
    let mut group = c.benchmark_group("fig6");
    group.bench_function("sanitize_traces", |b| {
        b.iter(|| black_box(sanitize(&traces).0.len()))
    });
    let (paths, _) = sanitize(&traces);
    group.bench_function("infer_relationships", |b| {
        b.iter(|| {
            let report = dnsroute::infer_relationships(&paths, |ip| geo.asn_of(ip));
            black_box(report.usable_paths)
        })
    });
    group.finish();
}

fn main() {
    regenerate();
    let mut c = criterion();
    bench_fig6(&mut c);
    c.final_summary();
}
