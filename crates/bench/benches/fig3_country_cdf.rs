//! Figure 3: CDF of transparent forwarders per country, ranked descending.
//!
//! Paper: the top-10 countries hold ~90 % of all transparent forwarders;
//! roughly 25 % of ODNS countries host none.

use bench::{banner, bench_world, criterion, tiny_world};
use criterion::{black_box, Criterion};
use scanner::ClassifierConfig;

fn regenerate() {
    banner(
        "Figure 3 — CDF of transparent forwarders per country",
        "top-10 countries ≈ 90%; ~25% of ODNS countries host none",
    );
    let mut internet = bench_world();
    let census = analysis::run_census(&mut internet, &ClassifierConfig::default());
    let (table, top10_share, zero_share) = analysis::report::figure3(&census);
    println!("{}", table.render());

    let cdf = analysis::aggregate::transparent_count_cdf(&census);
    println!(
        "{}",
        analysis::chart::render_cdf("transparent forwarders per country", &cdf, 56, 10)
    );
    println!(
        "top-10 cumulative share: {:.1}% (paper ≈ 90%)   zero-transparent countries: {:.0}% (paper ≈ 25%)",
        top10_share * 100.0,
        zero_share * 100.0
    );
    assert!(
        (0.80..0.97).contains(&top10_share),
        "top-10 share {top10_share}"
    );
    assert!(
        (0.15..0.35).contains(&zero_share),
        "zero share {zero_share}"
    );
}

fn bench_fig3(c: &mut Criterion) {
    let mut internet = tiny_world();
    let census = analysis::run_census(&mut internet, &ClassifierConfig::default());
    let mut group = c.benchmark_group("fig3");
    group.bench_function("cumulative_country_shares", |b| {
        b.iter(|| black_box(analysis::figure3_cumulative(&census).0.len()))
    });
    group.finish();
}

fn main() {
    regenerate();
    let mut c = criterion();
    bench_fig3(&mut c);
    c.final_summary();
}
