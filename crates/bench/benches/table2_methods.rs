//! Table 2: query-based (destination-encoded names) vs response-based
//! (static name, client-specific answers) forwarder detection.
//!
//! Paper: the query-based method defeats caches and loads the
//! authoritative server; the response-based method lets resolver caches
//! absorb repeats, keeping authoritative load low — at the cost of
//! requiring classification at the client.

use bench::{banner, criterion, tiny_world};
use criterion::{black_box, Criterion};
use inetgen::{CountrySelection, GenConfig};
use odns::StudyAuthServer;
use scanner::{ProbeNaming, ScanConfig};

struct MethodResult {
    answered: usize,
    auth_queries: u64,
    cache_absorption: f64,
}

fn run_method(naming: ProbeNaming) -> MethodResult {
    let config = GenConfig {
        countries: CountrySelection::Codes(vec!["BRA", "TUR", "IND"]),
        scale: 1_000,
        dud_fraction: 0.0,
        ..GenConfig::default()
    };
    let mut internet = inetgen::generate(&config);
    let mut scan = ScanConfig::new(internet.targets.clone());
    scan.naming = naming;
    let outcome = scanner::run_scan(&mut internet.sim, internet.fixtures.scanner, scan);
    let answered = outcome.answered_count();
    let auth: &StudyAuthServer = internet.sim.host_as(internet.fixtures.auth).expect("auth");
    let auth_queries = auth.stats.queries_received;
    // Every answered probe triggered one resolution; queries that never
    // reached the authoritative server were absorbed by resolver caches.
    let cache_absorption = if answered == 0 {
        0.0
    } else {
        1.0 - (auth_queries as f64 / answered as f64).min(1.0)
    };
    MethodResult {
        answered,
        auth_queries,
        cache_absorption,
    }
}

fn regenerate() {
    banner(
        "Table 2 — comparison of forwarder detection methods",
        "custom queries: no caching, high auth load; responses: high caching, low auth load",
    );
    let response_based = run_method(ProbeNaming::Static);
    let query_based = run_method(ProbeNaming::EncodeTarget);

    let mut t = analysis::TextTable::new([
        "Method",
        "Answered probes",
        "Auth queries",
        "Cache absorption",
        "Detection",
        "Classification",
    ]);
    t.row([
        "Custom queries (encode target)".to_string(),
        query_based.answered.to_string(),
        query_based.auth_queries.to_string(),
        format!("{:.1}%", query_based.cache_absorption * 100.0),
        "at server".to_string(),
        "at client".to_string(),
    ]);
    t.row([
        "Custom responses (this work)".to_string(),
        response_based.answered.to_string(),
        response_based.auth_queries.to_string(),
        format!("{:.1}%", response_based.cache_absorption * 100.0),
        "at client".to_string(),
        "at client".to_string(),
    ]);
    println!("{}", t.render());
    assert!(
        query_based.auth_queries > response_based.auth_queries,
        "query-encoding must load the authoritative server more"
    );
    println!(
        "auth load ratio query/response = {:.1}x — the paper's 'Load auth. name server: High vs Low'",
        query_based.auth_queries as f64 / response_based.auth_queries.max(1) as f64
    );
}

fn bench_methods(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2");
    group.bench_function("response_based_scan", |b| {
        b.iter(|| {
            let mut internet = tiny_world();
            let outcome = scanner::run_scan(
                &mut internet.sim,
                internet.fixtures.scanner,
                ScanConfig::new(internet.targets.clone()),
            );
            black_box(outcome.answered_count())
        })
    });
    group.bench_function("query_encoding_scan", |b| {
        b.iter(|| {
            let mut internet = tiny_world();
            let outcome = scanner::run_scan(
                &mut internet.sim,
                internet.fixtures.scanner,
                ScanConfig::new(internet.targets.clone()).with_query_encoding(),
            );
            black_box(outcome.answered_count())
        })
    });
    group.finish();
}

fn main() {
    regenerate();
    let mut c = criterion();
    bench_methods(&mut c);
    c.final_summary();
}
