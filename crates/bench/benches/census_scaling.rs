//! Million-target census scaling over warm shard worlds.
//!
//! The paper's census probes the full IPv4 space; the reproduction's
//! scaling ceiling is this bench: a 1M+-target census (full country
//! table at 1:10 scale, four unresponsive duds per planted host — the
//! real census's hit rate is far below 20 %) swept across shard counts
//! over a warm [`inetgen::ShardWorldCache`]. Worlds generate once per
//! shard count; the timed region is the warm sweep — transactional scan,
//! in-worker correlate + classify, concatenating merge — which is the
//! repeating unit of a longitudinal measurement series.
//!
//! Classification counts are asserted K-invariant (the engine's
//! determinism contract), and the headline numbers merge into the
//! `census` section of `BENCH_simcore.json`. Set `CENSUS_QUICK=1` for a
//! fast CI-friendly run (it lands at `census_quick`, never overwriting a
//! committed full section).

use bench::{banner, merge_bench_section};
use inetgen::{GenConfig, ShardWorldCache};
use scanner::{ClassifierConfig, OdnsClass};
use std::time::Instant;

// Wall-clock is the measured quantity here (clippy.toml bans it elsewhere).
#[allow(clippy::disallowed_methods)]
fn headline_sweep(quick: bool) {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    banner(
        "census scaling — 1M+-target sharded census over warm shard worlds",
        "method of §4.1 at census scale (engine scaling, no paper artifact)",
    );
    println!("machine: {cores} worker thread(s) available\n");

    // Full mode: the whole country table at 1:10 scale with 4 duds per
    // planted host ≈ 1.07M probe targets. Quick mode shrinks the world
    // ~200× for CI while keeping the dud-heavy shape.
    let config = GenConfig {
        scale: if quick { 2_000 } else { 10 },
        dud_fraction: 4.0,
        ..GenConfig::default()
    };
    let ks: &[u32] = if quick { &[1, 2] } else { &[1, 2, 4, 8] };
    let reps = if quick { 1 } else { 2 };
    let classifier = ClassifierConfig::default();

    let mut baseline: Option<(f64, usize, usize, usize)> = None;
    let mut sweep_rows = String::new();
    for &k in ks {
        let mut cache = ShardWorldCache::new(config.clone());
        let t_gen = Instant::now();
        let census = analysis::run_census_cached(&mut cache, k, &classifier);
        let gen_secs = t_gen.elapsed().as_secs_f64();
        let targets = census.rows.len();
        let odns = census.odns_total();
        let transparent = census.count(OdnsClass::TransparentForwarder);

        let t0 = Instant::now();
        for _ in 0..reps {
            let warm = analysis::run_census_cached(&mut cache, k, &classifier);
            assert_eq!(warm.odns_total(), odns, "warm K={k} sweep diverged");
        }
        let secs = t0.elapsed().as_secs_f64() / reps as f64;
        let probes_per_sec = targets as f64 / secs;

        match baseline {
            None => {
                if !quick {
                    assert!(
                        targets >= 1_000_000,
                        "headline census must probe ≥1M targets, got {targets}"
                    );
                }
                println!(
                    "K=1: {targets} targets, {odns} ODNS ({transparent} transparent), warm sweep {secs:.2}s — {probes_per_sec:.0} probes/s (gen+first {gen_secs:.2}s)  [baseline]"
                );
                baseline = Some((secs, targets, odns, transparent));
            }
            Some((base_secs, _, base_odns, base_transparent)) => {
                // Target counts may differ by a handful of duds across K
                // (per-shard flooring); classification counts may not.
                assert_eq!(odns, base_odns, "K={k} changed ODNS count");
                assert_eq!(
                    transparent, base_transparent,
                    "K={k} changed transparent count"
                );
                println!(
                    "K={k}: {targets} targets, {odns} ODNS ({transparent} transparent), warm sweep {secs:.2}s — {probes_per_sec:.0} probes/s (gen+first {gen_secs:.2}s)  speedup ×{:.2}",
                    base_secs / secs
                );
            }
        }
        if !sweep_rows.is_empty() {
            sweep_rows.push_str(",\n      ");
        }
        sweep_rows.push_str(&format!(
            "{{ \"shards\": {k}, \"probes_per_second\": {probes_per_sec:.0}, \"warm_sweep_seconds\": {secs:.6}, \"generate_seconds\": {gen_secs:.6} }}"
        ));
    }
    let (_, targets, odns, transparent) = baseline.expect("at least one K measured");

    let section = format!(
        "{{\n    \"bench\": \"census_scaling\",\n    \"mode\": \"{}\",\n    \"timed_region\": \"warm sweep over cached shard worlds ({} reps)\",\n    \"world\": \"full country table, scale {}, dud_fraction {}\",\n    \"targets\": {},\n    \"odns_total\": {},\n    \"transparent_forwarders\": {},\n    \"sweeps\": [\n      {}\n    ]\n  }}",
        if quick { "quick" } else { "full" },
        reps,
        config.scale,
        config.dud_fraction,
        targets,
        odns,
        transparent,
        sweep_rows,
    );
    match merge_bench_section("census", &section) {
        Ok(path) => println!("\ncensus: wrote section \"census\" to {path}"),
        Err(e) => eprintln!("census: could not write artifact: {e}"),
    }
}

fn main() {
    let quick = bench::quick_mode("CENSUS_QUICK");
    headline_sweep(quick);
}
