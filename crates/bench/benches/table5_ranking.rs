//! Table 5: top countries ranked by ODNS components — the transactional
//! view vs an emulated Shadowserver pass over the same population.
//!
//! Paper: Brazil climbs 4 ranks (+248k hosts) once transparent forwarders
//! count; Turkey +12; China *drops* 85k because manipulated responders
//! fail the strict two-record check that Shadowserver doesn't apply.

use bench::{banner, bench_world, criterion, tiny_world};
use criterion::{black_box, Criterion};
use scanner::ClassifierConfig;
use std::collections::BTreeMap;

fn regenerate() {
    banner(
        "Table 5 — country ranking: this work vs Shadowserver",
        "BRA +4 ranks, TUR +12, ARG +11; CHN/KOR shrink under strict sanitization",
    );
    let mut internet = bench_world();
    let census = analysis::run_census(&mut internet, &ClassifierConfig::default());
    let shadow = analysis::run_shadowserver_census(&mut internet);
    println!(
        "{}",
        analysis::report::table5(&census, &shadow, 20).render()
    );

    let rows = analysis::table5_ranking(&census, &shadow, 60);
    let find = |code: &str| rows.iter().find(|r| r.country == code);
    if let (Some(bra), Some(chn)) = (find("BRA"), find("CHN")) {
        assert!(
            bra.count_delta() > 0,
            "Brazil must gain hosts over Shadowserver (transparent forwarders)"
        );
        assert!(
            chn.count_delta() < 0,
            "China must lose hosts (manipulated responders discarded), got {}",
            chn.count_delta()
        );
        println!(
            "BRA: {:+} hosts, rank delta {:?} (paper: +248k, +4) | CHN: {:+} hosts (paper: -85k)",
            bra.count_delta(),
            bra.rank_delta(),
            chn.count_delta()
        );
    }
    if let Some(tur) = find("TUR") {
        assert!(
            tur.rank_delta().unwrap_or(0) > 0,
            "Turkey must climb the ranking once transparent forwarders count"
        );
    }
}

fn bench_ranking(c: &mut Criterion) {
    let mut internet = tiny_world();
    let census = analysis::run_census(&mut internet, &ClassifierConfig::default());
    let shadow: BTreeMap<&'static str, usize> = analysis::run_shadowserver_census(&mut internet);
    let mut group = c.benchmark_group("table5");
    group.bench_function("ranking_join", |b| {
        b.iter(|| black_box(analysis::table5_ranking(&census, &shadow, 20).len()))
    });
    group.finish();
}

fn main() {
    regenerate();
    let mut c = criterion();
    bench_ranking(&mut c);
    c.final_summary();
}
