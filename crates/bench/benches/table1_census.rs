//! Table 1: the composition of the open DNS infrastructure.
//!
//! Paper: 32K recursive resolvers (2 %), 1.5M recursive forwarders (72 %),
//! 0.6M transparent forwarders (26 %), 2.125M total — plus the §6 device
//! attribution (~23 % MikroTik).

use bench::{banner, bench_world, criterion, tiny_world};
use criterion::{black_box, Criterion};
use scanner::{ClassifierConfig, OdnsClass};

fn regenerate() {
    banner(
        "Table 1 — ODNS composition",
        "32K (2%) / 1.5M (72%) / 0.6M (26%), 2.125M total",
    );
    let mut internet = bench_world();
    let census = analysis::run_census(&mut internet, &ClassifierConfig::default());
    println!("{}", analysis::report::table1(&census).render());
    println!("paper shares: resolvers 2% | recursive fwd 72% | transparent 26%  (scale 1:500)");

    // §6 device attribution over the discovered transparent forwarders.
    let targets = census.transparent_targets();
    let sample: Vec<_> = targets.iter().copied().take(600).collect();
    let evidence = scanner::run_fingerprint_scan(
        &mut internet.sim,
        internet.fixtures.campaign_scanners[1],
        scanner::FingerprintConfig::new(sample.clone()),
    );
    let vendors = analysis::vendor_summary(&evidence, &sample);
    println!(
        "device fingerprinting: MikroTik {:.1}% of transparent forwarders (paper: ~23%)",
        vendors.share(odns::Vendor::MikroTik) * 100.0
    );
    let top = analysis::top_as_summary(&census, &internet.geo, 100);
    println!(
        "top-100 ASes: {} eyeball / {} other / {} unclassified; {} are 32-bit ASNs; {:.0}% coverage (paper: 79/7/14, 65, 50%)",
        top.eyeball, top.other_kinds, top.unclassified, top.four_octet, top.coverage * 100.0
    );
}

fn bench_census(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1");
    group.bench_function("full_census_tiny_world", |b| {
        b.iter(|| {
            let mut internet = tiny_world();
            let census = analysis::run_census(&mut internet, &ClassifierConfig::default());
            black_box(census.count(OdnsClass::TransparentForwarder))
        })
    });

    // Classification alone, on a pre-recorded outcome.
    let mut internet = tiny_world();
    let outcome = scanner::run_scan(
        &mut internet.sim,
        internet.fixtures.scanner,
        scanner::ScanConfig::new(internet.targets.clone()),
    );
    let cfg = ClassifierConfig::default();
    group.bench_function("classify_transactions", |b| {
        b.iter(|| {
            let n = outcome
                .transactions
                .iter()
                .filter(|t| scanner::classify(t, &cfg).class().is_some())
                .count();
            black_box(n)
        })
    });
    group.finish();
}

fn main() {
    regenerate();
    let mut c = criterion();
    bench_census(&mut c);
    c.final_summary();
}
