//! Micro-benchmarks of the wire substrate: DNS message codec, IPv4/UDP
//! encoding with checksums, pcap writing — plus the authoritative server's
//! answer-construction rate (the paper's server sustains 20k pps; our
//! in-memory hot path must be far above that for the simulation to be the
//! bottleneck, not the codec).

use bench::criterion;
use criterion::{black_box, Criterion};
use dnswire::{DnsName, Message, MessageBuilder, RrType};
use netsim::wire::{decode, encode_udp};
use netsim::Datagram;
use std::net::Ipv4Addr;

fn bench_dns_codec(c: &mut Criterion) {
    let qname = DnsName::parse("odns-study.example.").unwrap();
    let query = MessageBuilder::query(0x2861, qname.clone(), RrType::A)
        .recursion_desired(true)
        .build();
    let response = MessageBuilder::response_to(&query)
        .recursion_available(true)
        .answer_a(qname.clone(), 300, Ipv4Addr::new(203, 1, 113, 50))
        .answer_a(qname, 300, odns::study::CONTROL_A)
        .build();
    let query_bytes = query.encode();
    let response_bytes = response.encode();

    let mut group = c.benchmark_group("dns_codec");
    group.throughput(criterion::Throughput::Elements(1));
    group.bench_function("encode_query", |b| {
        b.iter(|| black_box(query.encode().len()))
    });
    group.bench_function("encode_response_2a", |b| {
        b.iter(|| black_box(response.encode().len()))
    });
    group.bench_function("decode_query", |b| {
        b.iter(|| black_box(Message::decode(&query_bytes).unwrap().header.id))
    });
    group.bench_function("decode_response_2a", |b| {
        b.iter(|| black_box(Message::decode(&response_bytes).unwrap().answers.len()))
    });
    group.bench_function("peek_id", |b| {
        b.iter(|| black_box(dnswire::peek_id(&response_bytes)))
    });
    group.finish();
}

fn bench_ip_codec(c: &mut Criterion) {
    let dgram = Datagram {
        src: Ipv4Addr::new(192, 0, 2, 1),
        dst: Ipv4Addr::new(203, 0, 113, 1),
        src_port: 33000,
        dst_port: 53,
        ttl: 64,
        payload: vec![0xAB; 48].into(),
    };
    let wire = encode_udp(&dgram, 7);
    let mut group = c.benchmark_group("ip_codec");
    group.throughput(criterion::Throughput::Bytes(wire.len() as u64));
    group.bench_function("encode_udp_with_checksums", |b| {
        b.iter(|| black_box(encode_udp(&dgram, 7).len()))
    });
    group.bench_function("decode_udp_with_checksums", |b| {
        b.iter(|| black_box(decode(&wire).is_ok()))
    });
    group.finish();
}

fn bench_pcap(c: &mut Criterion) {
    let dgram = Datagram {
        src: Ipv4Addr::new(192, 0, 2, 1),
        dst: Ipv4Addr::new(203, 0, 113, 1),
        src_port: 33000,
        dst_port: 53,
        ttl: 64,
        payload: vec![0xAB; 48].into(),
    };
    let wire = encode_udp(&dgram, 7);
    let mut group = c.benchmark_group("pcap");
    group.throughput(criterion::Throughput::Elements(1000));
    group.bench_function("write_1000_records", |b| {
        b.iter(|| {
            let mut w = netsim::pcap::PcapWriter::new();
            for i in 0..1000u64 {
                w.write(netsim::SimTime(i), &wire);
            }
            black_box(w.finish().len())
        })
    });
    group.finish();
}

fn bench_auth_answers(c: &mut Criterion) {
    // The paper's authoritative server handles 20k pps; measure our
    // answer-construction rate per query (simulated network excluded).
    use netsim::testkit::Exchange;
    let mut group = c.benchmark_group("auth_server");
    group.throughput(criterion::Throughput::Elements(100));
    group.bench_function("answer_100_queries_e2e", |b| {
        b.iter(|| {
            let auth_ip = Ipv4Addr::new(198, 51, 100, 53);
            let mut ex = Exchange::new(
                auth_ip,
                Ipv4Addr::new(192, 0, 2, 1),
                odns::StudyAuthServer::new(odns::AuthConfig {
                    rate_limit_pps: None,
                    keep_log: false,
                    ..odns::AuthConfig::default()
                }),
            );
            for i in 0..100u16 {
                let q = MessageBuilder::query(i, odns::study::study_qname(), RrType::A).build();
                ex.send_at(
                    netsim::SimDuration::from_micros(u64::from(i)),
                    netsim::UdpSend::new(30000 + i, auth_ip, 53, q.encode()),
                );
            }
            ex.run();
            black_box(ex.received().len())
        })
    });
    group.finish();
}

fn main() {
    println!("micro-benchmarks: DNS codec, IPv4/UDP checksummed codec, pcap, auth server");
    let mut c = criterion();
    bench_dns_codec(&mut c);
    bench_ip_codec(&mut c);
    bench_pcap(&mut c);
    bench_auth_answers(&mut c);
    c.final_summary();
}
