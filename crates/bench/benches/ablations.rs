//! Ablations of the design choices DESIGN.md calls out:
//!
//! 1. strict two-record sanitization vs Shadowserver-style single-record
//!    acceptance (§4.2);
//! 2. DNSRoute++ vs classic traceroute (§5);
//! 3. response-based vs query-based probing under resolver-cache load
//!    (§6 — covered quantitatively in `table2_methods`, summarized here).

use bench::{banner, criterion, tiny_world};
use criterion::{black_box, Criterion};
use dnsroute::{run_dnsroute, sanitize, DnsRouteConfig};
use inetgen::{CountrySelection, GenConfig, PlantedClass};
use scanner::{ClassifierConfig, OdnsClass};

fn ablation_sanitization() {
    banner(
        "Ablation 1 — strict vs relaxed response sanitization",
        "§4.2: omitting the control-record check 'leads to similar numbers than Shadowserver'",
    );
    let config = GenConfig {
        scale: 500,
        ..GenConfig::default()
    };

    let mut strict_world = inetgen::generate(&config);
    let strict = analysis::run_census(&mut strict_world, &ClassifierConfig::default());
    let mut relaxed_world = inetgen::generate(&config);
    let relaxed = analysis::run_census(&mut relaxed_world, &ClassifierConfig::relaxed());

    let manipulated = strict_world.truth.count(PlantedClass::ManipulatedForwarder);
    let mut t = analysis::TextTable::new(["Classifier", "ODNS total", "Discarded (manipulated)"]);
    t.row([
        "strict (this work)".to_string(),
        strict.odns_total().to_string(),
        strict
            .discarded(scanner::Discard::ControlRecordViolated)
            .to_string(),
    ]);
    t.row([
        "relaxed (Shadowserver-like)".to_string(),
        relaxed.odns_total().to_string(),
        relaxed
            .discarded(scanner::Discard::ControlRecordViolated)
            .to_string(),
    ]);
    println!("{}", t.render());
    assert_eq!(
        relaxed.odns_total(),
        strict.odns_total() + manipulated,
        "relaxed counts exactly the manipulated responders on top"
    );
    println!(
        "relaxed − strict = {} = planted manipulated responders ✓",
        relaxed.odns_total() - strict.odns_total()
    );
}

fn ablation_classic_traceroute() {
    banner(
        "Ablation 2 — DNSRoute++ vs classic traceroute",
        "§5: classic traceroute stops at the target and sees nothing behind it",
    );
    let config = GenConfig {
        countries: CountrySelection::Codes(vec!["BRA", "TUR"]),
        scale: 1_500,
        dud_fraction: 0.0,
        ..GenConfig::default()
    };
    let mut internet = inetgen::generate(&config);
    let census = analysis::run_census(&mut internet, &ClassifierConfig::default());
    let targets = census.transparent_targets();

    let classic = run_dnsroute(
        &mut internet.sim,
        internet.fixtures.scanner,
        DnsRouteConfig::classic(targets.clone()),
    );
    let (classic_paths, _) = sanitize(&classic);

    let mut internet2 = inetgen::generate(&config);
    let census2 = analysis::run_census(&mut internet2, &ClassifierConfig::default());
    let full = run_dnsroute(
        &mut internet2.sim,
        internet2.fixtures.scanner,
        DnsRouteConfig::new(census2.transparent_targets()),
    );
    let (full_paths, _) = sanitize(&full);

    let mut t =
        analysis::TextTable::new(["Mode", "Targets", "Forwarders located", "Paths to resolver"]);
    t.row([
        "classic traceroute".to_string(),
        targets.len().to_string(),
        classic
            .iter()
            .filter(|x| x.target_seen_at.is_some())
            .count()
            .to_string(),
        classic_paths.len().to_string(),
    ]);
    t.row([
        "DNSRoute++".to_string(),
        targets.len().to_string(),
        full.iter()
            .filter(|x| x.target_seen_at.is_some())
            .count()
            .to_string(),
        full_paths.len().to_string(),
    ]);
    println!("{}", t.render());
    assert!(classic_paths.is_empty());
    assert_eq!(full_paths.len(), targets.len());
    println!("classic mode recovers zero forwarder→resolver paths ✓");
}

fn bench_ablations(c: &mut Criterion) {
    let mut internet = tiny_world();
    let outcome = scanner::run_scan(
        &mut internet.sim,
        internet.fixtures.scanner,
        scanner::ScanConfig::new(internet.targets.clone()),
    );
    let strict = ClassifierConfig::default();
    let relaxed = ClassifierConfig::relaxed();
    let mut group = c.benchmark_group("ablations");
    group.bench_function("classify_strict", |b| {
        b.iter(|| {
            black_box(
                outcome
                    .transactions
                    .iter()
                    .filter(|t| {
                        scanner::classify(t, &strict).class()
                            == Some(OdnsClass::TransparentForwarder)
                    })
                    .count(),
            )
        })
    });
    group.bench_function("classify_relaxed", |b| {
        b.iter(|| {
            black_box(
                outcome
                    .transactions
                    .iter()
                    .filter(|t| {
                        scanner::classify(t, &relaxed).class()
                            == Some(OdnsClass::TransparentForwarder)
                    })
                    .count(),
            )
        })
    });
    group.finish();
}

fn main() {
    ablation_sanitization();
    ablation_classic_traceroute();
    let mut c = criterion();
    bench_ablations(&mut c);
    c.final_summary();
}
