//! Micro-benchmarks of the simulator core: route resolution, event
//! throughput, world generation — establishing that an Internet-scale
//! (1:1) census is compute-feasible.
//!
//! The `hotpath` group additionally emits a machine-readable
//! `BENCH_simcore.json` (probes/sec, events/sec, route-cache hit rate) so
//! successive PRs have a perf trajectory to compare against. Set
//! `HOTPATH_QUICK=1` for a fast CI-friendly run.

use bench::{criterion, tiny_world};
use criterion::{black_box, Criterion};
use inetgen::{CountrySelection, GenConfig, Internet};
use scanner::ScanConfig;
use std::time::Instant;

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("generation");
    group.bench_function("generate_two_country_world", |b| {
        b.iter(|| {
            let internet = inetgen::generate(&GenConfig {
                countries: CountrySelection::Codes(vec!["MUS", "FSM"]),
                scale: 1_000,
                dud_fraction: 0.0,
                ..GenConfig::default()
            });
            black_box(internet.truth.hosts.len())
        })
    });
    group.finish();
}

fn bench_event_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("simcore");
    // Steady-state probe throughput: one warm world, repeated scans — the
    // regime of a long census (route caches warm, resolver answers cached,
    // templates built). A census's cost is N probes through a warm engine,
    // not N world rebuilds.
    let mut internet = tiny_world();
    let probes = internet.targets.len() as u64;
    // Warm every cache layer before measurement.
    let _ = scanner::run_scan(
        &mut internet.sim,
        internet.fixtures.scanner,
        ScanConfig::new(internet.targets.clone()),
    );
    group.throughput(criterion::Throughput::Elements(probes));
    group.bench_function("scan_probes_per_second", |b| {
        b.iter(|| {
            let outcome = scanner::run_scan(
                &mut internet.sim,
                internet.fixtures.scanner,
                ScanConfig::new(internet.targets.clone()),
            );
            black_box(outcome.transactions.len())
        })
    });
    // The historical shape (world rebuilt per scan), kept so the cold-start
    // cost stays visible alongside the steady-state number.
    group.bench_function("scan_probes_per_second_cold_world", |b| {
        b.iter(|| {
            let mut internet = tiny_world();
            let outcome = scanner::run_scan(
                &mut internet.sim,
                internet.fixtures.scanner,
                ScanConfig::new(internet.targets.clone()),
            );
            black_box(outcome.transactions.len())
        })
    });
    group.finish();
}

fn bench_route_resolution(c: &mut Criterion) {
    let internet = tiny_world();
    let topo = internet.sim.topology();
    let scanner_node = internet.fixtures.scanner;
    let targets: Vec<_> = internet.targets.iter().take(64).copied().collect();
    let mut group = c.benchmark_group("routing");
    group.throughput(criterion::Throughput::Elements(targets.len() as u64));
    group.bench_function("resolve_64_cold_routes", |b| {
        b.iter(|| {
            let mut resolver = netsim::RouteResolver::new();
            let mut hops = 0usize;
            for t in &targets {
                if let Ok(p) = resolver.resolve(topo, scanner_node, *t) {
                    hops += p.router_hops();
                }
            }
            black_box(hops)
        })
    });
    group.bench_function("resolve_64_warm_routes", |b| {
        let mut resolver = netsim::RouteResolver::new();
        for t in &targets {
            let _ = resolver.resolve(topo, scanner_node, *t);
        }
        b.iter(|| {
            let mut hops = 0usize;
            for t in &targets {
                if let Ok(p) = resolver.resolve(topo, scanner_node, *t) {
                    hops += p.router_hops();
                }
            }
            black_box(hops)
        })
    });
    group.finish();
}

/// Pre-PR reference figures, measured on the machine that landed the
/// reusable shard worlds (commit 2792ac0, same harness shapes) — before
/// the timer-wheel engine, batched pacing, and hot-answer replay. They
/// ride along in `BENCH_simcore.json` so any machine's run carries its own
/// "after" next to the recorded "before"; cross-machine comparisons should
/// use the ratio, not the absolute numbers.
const BASELINE_NOTE: &str = "pre-PR (commit 2792ac0), dev machine";
const BASELINE_STEADY_PROBES_PER_SEC: f64 = 1_029_803.0;
const BASELINE_COLD_WORLD_PROBES_PER_SEC: f64 = 90_812.0;
/// Queue events per answered probe at the baseline commit
/// (3,802,350 events/s over 1,029,803 probes/s): the figure batched
/// pacing drives down — every probe under the old engine cost its own
/// pacing timer event.
const BASELINE_EVENTS_PER_ANSWERED_PROBE: f64 = 3.69;

/// Steady-state hot-path measurement over a warm world, reported as
/// probes/sec and events/sec plus route-cache effectiveness, written to
/// `BENCH_simcore.json`.
// Wall-clock is the measured quantity here (clippy.toml bans it elsewhere).
#[allow(clippy::disallowed_methods)]
fn bench_hotpath() {
    let quick = bench::quick_mode("HOTPATH_QUICK");
    let scans: u32 = if quick { 200 } else { 2_000 };
    let mut internet: Internet = tiny_world();
    let probes_per_scan = internet.targets.len() as u64;

    // Warm-up: one scan populates route caches, resolver caches, and
    // response templates.
    let _ = scanner::run_scan(
        &mut internet.sim,
        internet.fixtures.scanner,
        ScanConfig::new(internet.targets.clone()),
    );
    let events_before = internet.sim.stats().events_processed;
    let coalesced_before = internet.sim.stats().timers_coalesced;
    let wheel_before = internet.sim.stats().events_wheel_scheduled;
    let heap_before = internet.sim.stats().events_heap_scheduled;

    let t0 = Instant::now();
    let mut answered = 0usize;
    for _ in 0..scans {
        let outcome = scanner::run_scan(
            &mut internet.sim,
            internet.fixtures.scanner,
            ScanConfig::new(internet.targets.clone()),
        );
        answered += black_box(outcome.answered_count());
    }
    let elapsed = t0.elapsed();

    let stats = internet.sim.stats();
    let events = stats.events_processed - events_before;
    let coalesced = stats.timers_coalesced - coalesced_before;
    let wheel_scheduled = stats.events_wheel_scheduled - wheel_before;
    let heap_scheduled = stats.events_heap_scheduled - heap_before;
    let total_probes = probes_per_scan * u64::from(scans);
    let probes_per_sec = total_probes as f64 / elapsed.as_secs_f64();
    let events_per_sec = events as f64 / elapsed.as_secs_f64();
    let events_per_answered = if answered > 0 {
        events as f64 / answered as f64
    } else {
        0.0
    };
    let hit_rate = if stats.route_cache_hits + stats.route_cache_misses > 0 {
        stats.route_cache_hits as f64 / (stats.route_cache_hits + stats.route_cache_misses) as f64
    } else {
        0.0
    };

    println!(
        "hotpath/steady_scan                      probes/s: {probes_per_sec:>12.0}  events/s: {events_per_sec:>12.0}  route-cache hit rate: {:.4}",
        hit_rate
    );
    println!(
        "hotpath/queue                            events/answered probe: {events_per_answered:.2}  timers coalesced: {coalesced}  wheel: {wheel_scheduled}  heap: {heap_scheduled}"
    );
    // The hot path runs with faults off and a single-attempt policy, so
    // every fault-plane and retry counter must read zero — the artifact
    // records them so a leak of either layer into the clean path is
    // visible in any run's JSON, not just in the dedicated tests.
    assert_eq!(
        (
            stats.dropped_fault,
            stats.dropped_corrupt,
            stats.duplicates_injected,
            stats.retransmits_sent
        ),
        (0, 0, 0, 0),
        "fault plane or retry layer touched the clean hot path"
    );

    let section = format!(
        "{{\n    \"bench\": \"micro_simcore/hotpath\",\n    \"mode\": \"{}\",\n    \"world\": \"tiny_world (MUS+FSM, scale 1000)\",\n    \"scans\": {},\n    \"probes_per_scan\": {},\n    \"answered_probes\": {},\n    \"steady\": {{\n      \"probes_per_second\": {:.0},\n      \"events_per_second\": {:.0},\n      \"events_per_answered_probe\": {:.3},\n      \"timers_coalesced\": {},\n      \"events_wheel_scheduled\": {},\n      \"events_heap_scheduled\": {},\n      \"elapsed_seconds\": {:.6},\n      \"route_cache_hits\": {},\n      \"route_cache_misses\": {},\n      \"route_cache_hit_rate\": {:.6}\n    }},\n    \"faults\": {{\n      \"dropped_fault\": {},\n      \"dropped_corrupt\": {},\n      \"duplicates_injected\": {},\n      \"retransmits_sent\": {}\n    }},\n    \"baseline\": {{\n      \"note\": \"{}\",\n      \"steady_probes_per_second\": {:.0},\n      \"cold_world_probes_per_second\": {:.0},\n      \"events_per_answered_probe\": {:.2}\n    }},\n    \"speedup_vs_baseline_steady\": {:.2}\n  }}",
        if quick { "quick" } else { "full" },
        scans,
        probes_per_scan,
        answered,
        probes_per_sec,
        events_per_sec,
        events_per_answered,
        coalesced,
        wheel_scheduled,
        heap_scheduled,
        elapsed.as_secs_f64(),
        stats.route_cache_hits,
        stats.route_cache_misses,
        hit_rate,
        stats.dropped_fault,
        stats.dropped_corrupt,
        stats.duplicates_injected,
        stats.retransmits_sent,
        BASELINE_NOTE,
        BASELINE_STEADY_PROBES_PER_SEC,
        BASELINE_COLD_WORLD_PROBES_PER_SEC,
        BASELINE_EVENTS_PER_ANSWERED_PROBE,
        probes_per_sec / BASELINE_STEADY_PROBES_PER_SEC,
    );
    match bench::merge_bench_section("hotpath", &section) {
        Ok(path) => println!("hotpath: wrote section \"hotpath\" to {path}"),
        Err(e) => eprintln!("hotpath: could not write artifact: {e}"),
    }
}

fn main() {
    println!("micro-benchmarks: world generation, scan event throughput, routing");
    let quick = bench::quick_mode("HOTPATH_QUICK");
    if !quick {
        let mut c = criterion();
        bench_generation(&mut c);
        bench_event_throughput(&mut c);
        bench_route_resolution(&mut c);
        c.final_summary();
    }
    bench_hotpath();
}
