//! Micro-benchmarks of the simulator core: route resolution, event
//! throughput, world generation — establishing that an Internet-scale
//! (1:1) census is compute-feasible.

use bench::{criterion, tiny_world};
use criterion::{black_box, Criterion};
use inetgen::{CountrySelection, GenConfig};
use scanner::ScanConfig;

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("generation");
    group.bench_function("generate_two_country_world", |b| {
        b.iter(|| {
            let internet = inetgen::generate(&GenConfig {
                countries: CountrySelection::Codes(vec!["MUS", "FSM"]),
                scale: 1_000,
                dud_fraction: 0.0,
                ..GenConfig::default()
            });
            black_box(internet.truth.hosts.len())
        })
    });
    group.finish();
}

fn bench_event_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("simcore");
    // Events per scan: measure a full small-world scan and report elements
    // so criterion prints a rate.
    let probes = {
        let internet = tiny_world();
        internet.targets.len() as u64
    };
    group.throughput(criterion::Throughput::Elements(probes));
    group.bench_function("scan_probes_per_second", |b| {
        b.iter(|| {
            let mut internet = tiny_world();
            let outcome = scanner::run_scan(
                &mut internet.sim,
                internet.fixtures.scanner,
                ScanConfig::new(internet.targets.clone()),
            );
            black_box(outcome.transactions.len())
        })
    });
    group.finish();
}

fn bench_route_resolution(c: &mut Criterion) {
    let internet = tiny_world();
    let topo = internet.sim.topology();
    let scanner_node = internet.fixtures.scanner;
    let targets: Vec<_> = internet.targets.iter().take(64).copied().collect();
    let mut group = c.benchmark_group("routing");
    group.throughput(criterion::Throughput::Elements(targets.len() as u64));
    group.bench_function("resolve_64_cold_routes", |b| {
        b.iter(|| {
            let mut resolver = netsim::RouteResolver::new();
            let mut hops = 0usize;
            for t in &targets {
                if let Ok(p) = resolver.resolve(topo, scanner_node, *t) {
                    hops += p.router_hops();
                }
            }
            black_box(hops)
        })
    });
    group.bench_function("resolve_64_warm_routes", |b| {
        let mut resolver = netsim::RouteResolver::new();
        for t in &targets {
            let _ = resolver.resolve(topo, scanner_node, *t);
        }
        b.iter(|| {
            let mut hops = 0usize;
            for t in &targets {
                if let Ok(p) = resolver.resolve(topo, scanner_node, *t) {
                    hops += p.router_hops();
                }
            }
            black_box(hops)
        })
    });
    group.finish();
}

fn main() {
    println!("micro-benchmarks: world generation, scan event throughput, routing");
    let mut c = criterion();
    bench_generation(&mut c);
    bench_event_throughput(&mut c);
    bench_route_resolution(&mut c);
    c.final_summary();
}
