//! Figure 4: the top-50 countries by transparent forwarders, with per-
//! country ODNS composition and AS counts.
//!
//! Paper: Brazil leads (1236 ASes), emerging markets dominate, and in
//! Brazil/India transparent forwarders exceed 80 % of the national ODNS.

use bench::{banner, bench_world, criterion, tiny_world};
use criterion::{black_box, Criterion};
use scanner::ClassifierConfig;

fn regenerate() {
    banner(
        "Figure 4 — top-50 countries by transparent forwarders",
        "BRA first; emerging markets dominate; BRA/IND > 80% transparent",
    );
    let mut internet = bench_world();
    let census = analysis::run_census(&mut internet, &ClassifierConfig::default());
    println!("{}", analysis::report::figure4(&census, 50).render());
    println!("bar legend: T = transparent forwarder, f = recursive forwarder, r = resolver");

    let ranked = analysis::rank_by_transparent(&census);
    assert_eq!(ranked[0].0, "BRA", "Brazil must lead the ranking");
    let bra = &ranked[0].1;
    assert!(
        bra.transparent_share() > 0.75,
        "Brazil's transparent share {:.2} must be near the paper's >80%",
        bra.transparent_share()
    );
    let ind = ranked
        .iter()
        .find(|(c, _)| *c == "IND")
        .expect("India present")
        .1;
    assert!(
        ind.transparent_share() > 0.70,
        "India {:.2}",
        ind.transparent_share()
    );
    // Emerging markets among the top-10 (paper: 8 of the 9 >10k countries).
    let emerging_top10 = ranked
        .iter()
        .take(10)
        .filter(|(code, _)| inetgen::by_code(code).map(|p| p.emerging).unwrap_or(false))
        .count();
    println!(
        "\nemerging markets in the top-10: {emerging_top10} (paper: 8 of 9 over-10k countries)"
    );
    assert!(emerging_top10 >= 6);
}

fn bench_fig4(c: &mut Criterion) {
    let mut internet = tiny_world();
    let census = analysis::run_census(&mut internet, &ClassifierConfig::default());
    let mut group = c.benchmark_group("fig4");
    group.bench_function("by_country_aggregation", |b| {
        b.iter(|| black_box(analysis::by_country(&census).len()))
    });
    group.finish();
}

fn main() {
    regenerate();
    let mut c = criterion();
    bench_fig4(&mut c);
    c.final_summary();
}
