//! Shard-count scaling of the sharded campaign & sensor experiment.
//!
//! `analysis::run_campaign_cached` drives, per shard world: the
//! transactional scan (tapped to an in-memory pcap) plus all three
//! campaign emulations (tapped) over the shard's target partition, with
//! the §3.1 sensors deployed everywhere and probed from the designated
//! shard. Four scans of every target per world means the engine moves
//! roughly 4× the census's probe volume — worth its own scaling sweep.
//!
//! The sweep runs over a warm [`inetgen::ShardWorldCache`]: worlds
//! generate once per shard count, and the timed region is the warm sweep
//! (reset worlds, re-deploy sensors, scan + three campaigns) — the unit
//! that repeats in a real measurement series.
//!
//! The K sweep asserts the engine's determinism contract (Table 3 matrix,
//! Table 5 component counts, census counts, sensor shed totals all
//! K-invariant) and reports campaign probes/s, merging a `campaign`
//! section into `BENCH_simcore.json` next to the hotpath and dnsroute
//! sections. Set `CAMPAIGN_QUICK=1` for a fast CI-friendly run (it lands
//! at `campaign_quick`, never overwriting a committed full section).

use bench::{banner, criterion, merge_bench_section};
use criterion::{black_box, Criterion};
use inetgen::{CountrySelection, GenConfig, ShardWorldCache};
use scanner::ClassifierConfig;
use std::time::Instant;

/// The six headline countries; `scale` trades population for time.
fn sweep_config(scale: u32) -> GenConfig {
    GenConfig {
        countries: CountrySelection::Codes(vec!["BRA", "IND", "USA", "TUR", "ARG", "IDN"]),
        scale,
        dud_fraction: 0.0,
        ..GenConfig::default()
    }
}

/// K=1 reference the sweep is checked against: warm-sweep seconds,
/// Table 5 component counts, sensor shed total.
type Baseline = (f64, Vec<(scanner::Campaign, usize)>, u64);

// Wall-clock is the measured quantity here (clippy.toml bans it elsewhere).
#[allow(clippy::disallowed_methods)]
fn headline_sweep(quick: bool) {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    banner(
        "campaign scaling — the sharded campaign & sensor experiment engine",
        "§3 controlled experiment + Table 5 campaign counts at engine scale",
    );
    println!("machine: {cores} worker thread(s) available\n");

    let config = sweep_config(if quick { 2_000 } else { 200 });
    let ks: &[u32] = if quick { &[1, 2] } else { &[1, 2, 4, 8] };
    let reps = if quick { 1 } else { 3 };
    let classifier = ClassifierConfig::default();

    let mut baseline: Option<Baseline> = None;
    let mut sweep_rows = String::new();
    let mut campaign_probe_total = 0u64;
    for &k in ks {
        // Generate the shard worlds once per K; warm sweeps reuse them.
        let mut cache = ShardWorldCache::new(config.clone());
        let t_gen = Instant::now();
        let sweep = analysis::run_campaign_cached(&mut cache, k, &classifier);
        let gen_secs = t_gen.elapsed().as_secs_f64();

        let t0 = Instant::now();
        for _ in 0..reps {
            let warm = analysis::run_campaign_cached(&mut cache, k, &classifier);
            assert_eq!(
                warm.census.rows.len(),
                sweep.census.rows.len(),
                "warm K={k} sweep diverged"
            );
        }
        let secs = t0.elapsed().as_secs_f64() / reps as f64;

        // Probe volume: three campaign passes over every target (+ the
        // four sensor addresses in the designated shard).
        let campaign_probes = 3 * (sweep.census.rows.len() as u64 + 4);
        campaign_probe_total = campaign_probes;
        let probes_per_sec = campaign_probes as f64 / secs;
        let counts = sweep.component_counts();
        assert_eq!(
            sweep.matrix,
            analysis::DetectionMatrix::paper_expected(),
            "K={k}: Table 3 must hold"
        );
        match &baseline {
            None => {
                println!(
                    "K=1: {campaign_probes} campaign probes ({} ODNS components seen by Shadowserver), warm sweep {secs:.3}s — {probes_per_sec:.0} campaign-probes/s (gen+first {gen_secs:.2}s)  [baseline]",
                    counts[0].1
                );
                baseline = Some((secs, counts, sweep.sensors.rate_limited()));
            }
            Some((base_secs, base_counts, base_shed)) => {
                assert_eq!(&counts, base_counts, "K={k} changed Table 5 counts");
                assert_eq!(
                    sweep.sensors.rate_limited(),
                    *base_shed,
                    "K={k} changed the sensors' shed totals"
                );
                println!(
                    "K={k}: {campaign_probes} campaign probes, warm sweep {secs:.3}s — {probes_per_sec:.0} campaign-probes/s (gen+first {gen_secs:.2}s)  speedup ×{:.2}",
                    base_secs / secs
                );
            }
        }
        if !sweep_rows.is_empty() {
            sweep_rows.push_str(",\n      ");
        }
        sweep_rows.push_str(&format!(
            "{{ \"shards\": {k}, \"campaign_probes_per_second\": {probes_per_sec:.0}, \"warm_sweep_seconds\": {secs:.6}, \"generate_seconds\": {gen_secs:.6} }}"
        ));
    }
    let (_, counts, shed) = baseline.expect("at least one K measured");

    let section = format!(
        "{{\n    \"bench\": \"campaign_scaling\",\n    \"mode\": \"{}\",\n    \"timed_region\": \"warm sweep over cached shard worlds ({} reps)\",\n    \"world\": \"6 headline countries, scale {}\",\n    \"campaign_probes\": {},\n    \"shadowserver_components\": {},\n    \"sensor_rate_limited\": {},\n    \"sweeps\": [\n      {}\n    ]\n  }}",
        if quick { "quick" } else { "full" },
        reps,
        config.scale,
        campaign_probe_total,
        counts[0].1,
        shed,
        sweep_rows,
    );
    match merge_bench_section("campaign", &section) {
        Ok(path) => println!("\ncampaign: wrote section \"campaign\" to {path}"),
        Err(e) => eprintln!("campaign: could not write artifact: {e}"),
    }
}

fn bench_shard_counts(c: &mut Criterion) {
    // A tiny two-country world keeps criterion iterations sub-second;
    // shape matches the headline sweep (scan + three campaigns per shard).
    let config = GenConfig {
        countries: CountrySelection::Codes(vec!["MUS", "FSM"]),
        scale: 1_000,
        dud_fraction: 0.0,
        ..GenConfig::default()
    };
    let classifier = ClassifierConfig::default();
    let mut group = c.benchmark_group("campaign_scaling");
    for k in [1u32, 2] {
        let mut cache = ShardWorldCache::new(config.clone());
        group.bench_function(format!("warm_campaigns_scale1000_k{k}"), |b| {
            b.iter(|| {
                let sweep = analysis::run_campaign_cached(&mut cache, k, &classifier);
                black_box(sweep.reports.len())
            })
        });
    }
    group.finish();
}

fn main() {
    let quick = bench::quick_mode("CAMPAIGN_QUICK");
    headline_sweep(quick);
    if !quick {
        let mut c = criterion();
        bench_shard_counts(&mut c);
        c.final_summary();
    }
}
