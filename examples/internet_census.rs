//! The full Internet-wide census (§4): generate the calibrated world, scan
//! it transactionally, and regenerate Table 1, Figures 3–5, Table 4, and
//! Table 5 (vs an emulated Shadowserver pass over the same population).
//!
//! ```sh
//! cargo run --release --example internet_census [scale]
//! ```
//!
//! `scale` defaults to 500 (≈4k ODNS hosts); smaller values grow the world
//! (1 = the paper's full 2.1M hosts — minutes of runtime and ~GBs of RAM).

use scanner::{ClassifierConfig, OdnsClass};

fn main() {
    let scale: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(500);
    println!("== Internet-wide ODNS census at scale 1:{scale} ==\n");

    let config = inetgen::GenConfig {
        scale,
        ..inetgen::GenConfig::default()
    };
    let mut internet = inetgen::generate(&config);
    println!(
        "world: {} ASes, {} hosts, {} targets",
        internet.sim.topology().as_count(),
        internet.sim.topology().host_count(),
        internet.targets.len()
    );

    let census = analysis::run_census(&mut internet, &ClassifierConfig::default());

    println!("\n--- Table 1: ODNS composition ---");
    println!("{}", analysis::report::table1(&census).render());

    println!("--- Figure 3: cumulative transparent forwarders per country ---");
    let (f3, top10_share, zero_share) = analysis::report::figure3(&census);
    println!("{}", f3.render());
    println!(
        "top-10 countries hold {:.1}% of transparent forwarders (paper: ~90%)",
        top10_share * 100.0
    );
    println!(
        "{:.0}% of ODNS countries host none at all (paper: ~25%)\n",
        zero_share * 100.0
    );

    println!("--- Figure 4: top countries by transparent forwarders ---");
    println!("{}", analysis::report::figure4(&census, 15).render());

    println!("--- Figure 5: resolver projects behind transparent forwarders ---");
    println!("{}", analysis::report::figure5(&census, 12).render());

    println!("--- Table 4: the 'other' share ---");
    println!(
        "{}",
        analysis::report::table4(&census, &internet.geo, 10).render()
    );

    println!("--- Table 5: ranking vs Shadowserver (emulated on this world) ---");
    let shadow = analysis::run_shadowserver_census(&mut internet);
    println!(
        "{}",
        analysis::report::table5(&census, &shadow, 15).render()
    );

    println!("--- Figure 8: /24 density of transparent forwarders ---");
    let (f8, _density) = analysis::report::figure8(&census);
    println!("{}", f8.render());

    let t = census.count(OdnsClass::TransparentForwarder);
    println!("Done: {t} transparent forwarders re-discovered by transactional scanning.");
}
