//! The sharded campaign & sensor observatory: run the §3 controlled
//! experiment and the campaign emulations over shard worlds in parallel,
//! then prove every result from the pcap captures alone.
//!
//! ```sh
//! cargo run --release --example campaign_observatory
//! ```

use scanner::{Campaign, ClassifierConfig};

fn main() {
    println!("== Sharded campaign & sensor experiment engine ==\n");
    let config = inetgen::GenConfig {
        countries: inetgen::CountrySelection::Codes(vec!["BRA", "IND", "TUR", "MUS"]),
        scale: 1_000,
        dud_fraction: 0.05,
        ..inetgen::GenConfig::default()
    };
    let shards = 4;
    let classifier = ClassifierConfig::default();

    println!(
        "phase 1 — {shards} shard worlds: tapped census scan + 3 tapped campaign passes each..."
    );
    let sweep = analysis::run_campaign_sharded(&config, shards, &classifier);
    println!(
        "  census: {} ODNS components ({} transparent forwarders)",
        sweep.census.odns_total(),
        sweep.census.count(scanner::OdnsClass::TransparentForwarder)
    );
    for (campaign, n) in sweep.component_counts() {
        println!("  {campaign}: {n} ODNS components reported");
    }
    println!(
        "  sensors: {} queries, {} shed by the 5-min /24 limiter, {} spoofed relays",
        sweep.sensors.queries(),
        sweep.sensors.rate_limited(),
        sweep.sensors.relayed
    );

    println!("\nTable 3 — detection of the three honeypot sensors:");
    println!("{}", sweep.matrix.render().render());
    assert_eq!(
        sweep.matrix,
        analysis::DetectionMatrix::paper_expected(),
        "the paper's matrix must reproduce"
    );

    println!("Table 5 — country ranking, census vs Shadowserver view:");
    println!("{}", sweep.table5(10).render());

    println!("phase 2 — capture-driven verification (offline, captures only)...");
    let capture_census = sweep.capture_census(&classifier).expect("captures parse");
    assert_eq!(capture_census, sweep.census);
    println!("  census rebuilt from per-shard scan captures: identical, row for row");
    let capture_reports = sweep.capture_reports().expect("captures parse");
    assert_eq!(capture_reports, sweep.reports);
    println!("  campaign reports replayed from campaign captures: identical");
    let merged = sweep.merged_capture().expect("captures merge");
    println!(
        "  merged inspectable pcap: {} bytes, {} packets across {} taps",
        merged.len(),
        netsim::pcap::read_pcap(&merged).unwrap().len(),
        sweep.captures.len() * (1 + Campaign::all().len()),
    );

    println!("\nphase 3 — the focused §3.1 sensor experiment, sharded...");
    let sensors = analysis::run_sensors_sharded(&config, shards);
    assert_eq!(
        sensors.matrix, sweep.matrix,
        "both engines agree on Table 3"
    );
    assert_eq!(
        sensors.capture_matrix().expect("captures parse"),
        sensors.matrix,
        "matrix reproducible from taps alone"
    );
    println!("{}", sensors.matrix.render().render());
    println!(
        "All three campaigns find the baseline resolver; Shadowserver reports\n\
         Sensor 2's *reply* address (stateless processing); Censys and Shodan\n\
         sanitize the mismatched source away; Sensor 3 is invisible to all —\n\
         the paper's Table 3, now shard-count-invariant and capture-proven."
    );
}
