//! Census under loss: sweep packet-loss rate against retransmission
//! budget and measure what the paper's correlation method recovers.
//!
//! Every grid point scans the *same* warm shard worlds under a
//! flow-keyed [`netsim::FaultPlan`] — verdicts are a pure function of
//! `(generation seed, flow)`, so the whole table is bit-identical for
//! any shard count and on every rerun.
//!
//! ```sh
//! cargo run --release --example resilience_study
//! ```

use analysis::run_resilience_sweep;
use inetgen::{CountrySelection, GenConfig, ShardWorldCache};

fn main() {
    println!("== Resilience study: recall under loss × retransmission budget ==\n");
    let config = GenConfig {
        countries: CountrySelection::Codes(vec!["BRA", "TUR", "MUS"]),
        scale: 2_000,
        dud_fraction: 0.0,
        ..GenConfig::default()
    };
    println!("worlds   : {:?}, scale {}", config.countries, config.scale);
    println!("loss     : 0%, 2%, 5%, 10% uniform per flow (plus proportionate");
    println!("           duplication and corruption — see FaultPlan::lossy)");
    println!("retries  : 0, 1, 2 retransmissions, 2 s RTO, exponential backoff\n");

    let mut cache = ShardWorldCache::new(config);
    let matrix = run_resilience_sweep(&mut cache, 4, &[0, 20, 50, 100], &[0, 1, 2]);
    println!("{}", matrix.render().render());

    let clean = matrix.cell(0, 0).expect("clean grid point ran");
    let lossy = matrix.cell(50, 0).expect("5% no-retry grid point ran");
    let retried = matrix.cell(50, 2).expect("5% two-retry grid point ran");
    println!(
        "\nrecall at 5% loss : {:.3} unretried -> {:.3} with 2 retries (clean {:.3})",
        lossy.recall(),
        retried.recall(),
        clean.recall()
    );
    println!(
        "wire overhead     : {} retransmissions on {} probes ({:.1}%)",
        retried.retransmits_sent,
        retried.probes_sent,
        retried.overhead() * 100.0
    );
    println!(
        "\nRetries recover probe-path loss completely, but an answer that the\n\
         network has fated to die dies for every attempt — the same flow key\n\
         dooms it each time — so recall under p answer-path loss tops out\n\
         near 1-p. That ceiling, not the retry budget, is what the faultgate\n\
         CI floor is calibrated against. Precision stays 1.000 in every cell:\n\
         loss costs coverage, it never fabricates a transparent forwarder."
    );
}
