//! DNSRoute++ exploration (§5): census → trace every transparent
//! forwarder → path-length CDFs per resolver project (Figure 6) and the
//! AS-relationship inference.
//!
//! Runs the *sharded* sweep driver: every shard world is scanned and
//! traced on a worker-thread pool, and the shard count never changes the
//! results (see `tests/sharded_dnsroute_determinism.rs`).
//!
//! ```sh
//! cargo run --release --example dnsroute_explorer
//! ```

use inetgen::{CountrySelection, GenConfig};
use scanner::ClassifierConfig;
use std::collections::BTreeSet;

fn main() {
    println!("== DNSRoute++: what lies behind the transparent forwarders? ==\n");
    let config = GenConfig {
        countries: CountrySelection::Codes(vec!["BRA", "IND", "USA", "TUR", "ARG", "IDN"]),
        scale: 1_000,
        dud_fraction: 0.0,
        ..GenConfig::default()
    };
    let shards = std::thread::available_parallelism()
        .map(|n| n.get() as u32)
        .unwrap_or(1);

    println!("steps 1+2: sharded census + TTL sweep past every forwarder ({shards} shards)...");
    let sweep = analysis::run_dnsroute_sharded(&config, shards, &ClassifierConfig::default());
    println!(
        "  {} transparent forwarders discovered and traced",
        sweep.census.transparent_targets().len()
    );
    let (paths, stats) = sweep.sanitized();
    println!(
        "  {} traces, {} sanitized paths kept ({} no-signature, {} no-answer, {} incomplete)",
        stats.total(),
        stats.kept,
        stats.rejected_no_signature,
        stats.rejected_no_answer,
        stats.rejected_incomplete
    );

    println!("\n--- Figure 6: path length forwarder → resolver [IP hops] ---");
    let (projects, other) = analysis::figure6_by_project(&paths, &sweep.geo);
    for p in &projects {
        let cdf = p.cdf();
        println!(
            "\n{} ({} paths, {} forwarder ASNs): mean {:.1} hops, median {:.0}, p90 {:.0}",
            p.project,
            p.hop_counts.len(),
            p.asn_count,
            p.mean_hops(),
            cdf.median().unwrap_or(0.0),
            cdf.quantile(0.9).unwrap_or(0.0)
        );
        print!(
            "{}",
            analysis::chart::render_cdf(p.project.name(), &cdf, 48, 8)
        );
    }
    println!("\n({} paths ended at local/other resolvers)", other.len());
    println!("\npaper's means: Cloudflare 6.3 < Google 7.9 < OpenDNS 9.3 — the");
    println!("ordering is driven by anycast PoP density and must reproduce here.");

    println!("\n--- §5: AS-relationship inference ---");
    // A CAIDA-like baseline: ground truth is per-world, so rebuild one
    // unsharded world just to extract the provider-customer pairs (the
    // backbone and per-country AS structure are partition-invariant).
    let internet = inetgen::generate(&config);
    let truth: Vec<(u32, u32)> = internet.sim.topology().provider_customer_pairs().to_vec();
    let known: BTreeSet<(u32, u32)> = truth.iter().take(truth.len() * 85 / 100).copied().collect();
    let (report, known_hits, new_pairs) =
        analysis::as_relationship_report(&paths, &sweep.geo, &known);
    println!(
        "usable paths: {}   AS_in == AS_out: {} ({:.0}%, paper: 62%)",
        report.usable_paths,
        report.matching_paths,
        report.matching_share() * 100.0
    );
    println!(
        "inferred provider→customer pairs: {} ({} already in the CAIDA-like baseline, {} newly discovered — paper: 41 new)",
        report.inferred.len(),
        known_hits,
        new_pairs
    );
}
