//! §6 misuse potential, generalized: seeded spoofed-source reflection
//! campaigns through every ODNS component class, rolled into the
//! per-component [`analysis::AttackMatrix`] — plus the sensor rate-limiter
//! efficacy row showing why honeypots are useless to attackers.
//!
//! ```sh
//! cargo run --release --example amplification_study
//! ```

use analysis::attack_sweep::run_attacks_sharded;
use inetgen::{CountrySelection, GenConfig};
use scanner::attacks::AttackVector;
use scanner::OdnsClass;

fn main() {
    println!("== Misuse study: reflective amplification across the ODNS component classes ==\n");
    let config = GenConfig {
        countries: CountrySelection::Codes(vec!["BRA", "IND"]),
        scale: 1_000,
        dud_fraction: 0.0,
        ..GenConfig::default()
    };

    println!("attacker : 1 spoofing box (SAV-free network)");
    println!("vectors  : ANY, TXT, ANY+EDNS(4096) — spoofed with the victim's source");
    println!("diffusers: every planted resolver, recursive forwarder, and transparent forwarder");
    println!("victim   : per-pass reply ports attribute each vector/component pair\n");

    let matrix = run_attacks_sharded(&config, 2);
    println!("{}", matrix.render().render());

    let s = &matrix.sensors;
    println!(
        "\nsensor flood      : {} spoofed queries ({} bytes) at sensors 1+2",
        s.attack_queries, s.attack_bytes
    );
    println!(
        "limiters shed     : {} of {} ({:.0}%) — victim saw only {} packets / {} bytes",
        s.rate_limited,
        s.queries,
        s.shed_fraction() * 100.0,
        s.victim.packets,
        s.victim.bytes
    );

    let tf_cell = matrix
        .cell(AttackVector::Any, OdnsClass::TransparentForwarder)
        .expect("transparent-forwarder pass ran");
    println!(
        "\nresolver addresses seen by the victim of the transparent-forwarder pass: {:?}",
        tf_cell.sources
    );
    println!(
        "\nNone of these are the diffusing forwarders: the attack arrives from\n\
         well-known public resolvers, and attribution of the diffusion layer is\n\
         impossible from the victim's viewpoint — the paper's §6 argument for\n\
         why transparent forwarders intensify the ODNS threat. The honeypot\n\
         sensors' one-answer-per-5-minutes-per-/24 policy, measured in the\n\
         flood row above, is what keeps research deployments off that list."
    );
}
