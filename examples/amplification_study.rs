//! §6 misuse potential: transparent forwarders as invisible diffusers of
//! reflective amplification — and why the sensors' rate limiting makes
//! honeypots useless to attackers.
//!
//! ```sh
//! cargo run --release --example amplification_study
//! ```

use dnswire::{MessageBuilder, RrType};
use inetgen::{CountrySelection, GenConfig};
use netsim::testkit::ScriptedClient;
use netsim::{SimDuration, UdpSend};

fn main() {
    println!("== Misuse study: reflective amplification through transparent forwarders ==\n");
    let config = GenConfig {
        countries: CountrySelection::Codes(vec!["BRA", "IND"]),
        scale: 1_000,
        dud_fraction: 0.0,
        ..GenConfig::default()
    };
    let mut internet = inetgen::generate(&config);
    let victim_node = internet.fixtures.victim;
    let victim_ip = internet.fixtures.victim_ip;

    let diffusers: Vec<_> = internet
        .truth
        .transparent_ips()
        .into_iter()
        .take(100)
        .collect();
    println!("attacker: 1 spoofing box (SAV-free network)");
    println!("diffusers: {} transparent forwarders", diffusers.len());
    println!("victim: {victim_ip}\n");

    // ANY query for maximum response size.
    let query = MessageBuilder::query(0xDDD, odns::study::study_qname(), RrType::Any)
        .recursion_desired(true)
        .build()
        .encode();
    let query = netsim::Payload::from(query);
    let query_len = query.len();

    let attacker_node = internet.fixtures.sensor3; // a SAV-free fixture box
    let mut attacker = ScriptedClient::new();
    let mut sends = Vec::new();
    for (i, d) in diffusers.iter().enumerate() {
        let token = attacker.push(UdpSend {
            src: Some(victim_ip),
            src_port: 4444,
            dst: *d,
            dst_port: 53,
            ttl: None,
            payload: query.clone(),
        });
        sends.push((SimDuration::from_micros(i as u64 * 200), token));
    }
    internet.sim.install(attacker_node, attacker);
    for (delay, token) in sends {
        internet.sim.schedule_timer(attacker_node, delay, token);
    }
    internet.sim.install(victim_node, ScriptedClient::new());
    internet.sim.run();

    let victim: &ScriptedClient = internet.sim.host_as(victim_node).unwrap();
    let received: usize = victim.datagrams.iter().map(|(_, d)| d.payload.len()).sum();
    let sent = query_len * diffusers.len();
    let mut sources: Vec<_> = victim.datagrams.iter().map(|(_, d)| d.src).collect();
    sources.sort();
    sources.dedup();

    println!(
        "attacker sent     : {} packets, {} bytes",
        diffusers.len(),
        sent
    );
    println!(
        "victim received   : {} packets, {} bytes from {} distinct resolver addresses",
        victim.datagrams.len(),
        received,
        sources.len()
    );
    println!(
        "amplification     : {:.2}x (bytes at victim / bytes spent)",
        received as f64 / sent as f64
    );
    println!("\nresolver addresses seen by the victim: {sources:?}");
    println!(
        "\nNone of these are the diffusing forwarders: the attack arrives from\n\
         well-known public resolvers (reaching multiple PoPs despite the\n\
         attacker's single box), and attribution of the diffusion layer is\n\
         impossible from the victim's viewpoint — the paper's §6 argument\n\
         for why transparent forwarders intensify the ODNS threat."
    );
}
