//! Quickstart: generate a small Internet, run the transactional census,
//! and print the ODNS composition (a miniature Table 1).
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use scanner::{ClassifierConfig, OdnsClass};

fn main() {
    println!("== Transparent Forwarders quickstart ==");
    println!("Generating a 1:1000-scale Internet (deterministic, seeded)...");
    let config = inetgen::GenConfig {
        scale: 1_000,
        ..inetgen::GenConfig::default()
    };
    let mut internet = inetgen::generate(&config);
    println!(
        "  {} ODNS hosts planted across {} countries; {} scan targets (incl. duds)",
        internet.truth.hosts.len(),
        internet.truth.countries.len(),
        internet.targets.len()
    );

    println!("\nRunning the transactional scan (unique port/TXID per probe)...");
    let census = analysis::run_census(&mut internet, &ClassifierConfig::default());

    println!("\n{}", analysis::report::table1(&census).render());

    println!("Scan hygiene:");
    println!(
        "  probes without response : {}",
        census.discarded(scanner::Discard::NoResponse)
    );
    println!(
        "  manipulated responses    : {}",
        census.discarded(scanner::Discard::ControlRecordViolated)
    );
    println!(
        "  unmatched/duplicate      : {}",
        census.unmatched_responses
    );

    let share = census.share(OdnsClass::TransparentForwarder);
    println!(
        "\nTransparent forwarders are {:.1}% of the ODNS — the share stateless\n\
         campaigns (Shadowserver, Censys, Shodan) cannot see. Paper: 26%.",
        share * 100.0
    );

    println!("\nTop countries by ODNS components:");
    let summary = analysis::report::country_summary(&census);
    for line in summary.render().lines().take(12) {
        println!("  {line}");
    }
}
