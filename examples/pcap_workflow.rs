//! The artifact-faithful workflow (§A.2): `dns-scan-server` captures the
//! complete scan traffic as a pcap; `dns-measurement-analysis` later
//! rebuilds transactions from the capture alone and classifies them. This
//! example runs both halves and shows they agree — then writes the pcap
//! and the census CSV next to the binary for inspection with real tools
//! (wireshark/tshark open the capture directly).
//!
//! ```sh
//! cargo run --release --example pcap_workflow
//! ```

use netsim::SimDuration;
use scanner::{ClassifierConfig, ScanConfig};

fn main() {
    println!("== pcap-driven measurement workflow ==\n");
    let config = inetgen::GenConfig {
        countries: inetgen::CountrySelection::Codes(vec!["BRA", "TUR", "MUS"]),
        scale: 1_000,
        ..inetgen::GenConfig::default()
    };
    let mut internet = inetgen::generate(&config);
    let scanner_node = internet.fixtures.scanner;

    println!("phase 1 — dns-scan-server: scan with dumpcap-style capture...");
    internet.sim.tap(scanner_node);
    let live_outcome = scanner::run_scan(
        &mut internet.sim,
        scanner_node,
        ScanConfig::new(internet.targets.clone()),
    );
    let pcap = internet
        .sim
        .take_capture(scanner_node)
        .expect("capture enabled");
    println!(
        "  captured {} bytes of raw IPv4 frames ({} probes sent)",
        pcap.len(),
        live_outcome.transactions.len()
    );

    println!("\nphase 2 — dns-measurement-analysis: offline, from the capture only...");
    let rebuilt =
        analysis::outcome_from_pcap(&pcap, SimDuration::from_secs(20)).expect("capture parses");
    let census = analysis::Census::from_transactions(
        &rebuilt.transactions,
        &internet.geo,
        &ClassifierConfig::default(),
    );
    println!("{}", analysis::report::table1(&census).render());

    // Cross-check: the offline pipeline agrees with the live scanner.
    let live_census = analysis::Census::from_transactions(
        &live_outcome.transactions,
        &internet.geo,
        &ClassifierConfig::default(),
    );
    for class in scanner::OdnsClass::all() {
        assert_eq!(
            census.count(class),
            live_census.count(class),
            "pipelines must agree"
        );
    }
    println!("offline == live for every component class \u{2713}");

    // Persist the artifacts.
    let out_dir = std::env::temp_dir().join("transparent-forwarders");
    std::fs::create_dir_all(&out_dir).expect("temp dir");
    let pcap_path = out_dir.join("scan.pcap");
    let csv_path = out_dir.join("census.csv");
    std::fs::write(&pcap_path, &pcap).expect("write pcap");
    std::fs::write(&csv_path, census.to_csv()).expect("write csv");
    println!("\nartifacts written:");
    println!(
        "  {} (opens in wireshark/tshark: LINKTYPE_RAW IPv4)",
        pcap_path.display()
    );
    println!(
        "  {} ({} dataframe rows)",
        csv_path.display(),
        census.rows.len()
    );
}
