//! The §3 controlled experiment: deploy the three honeypot sensors, let
//! the three scanning campaigns probe them, and print the Table 3
//! detection matrix.
//!
//! ```sh
//! cargo run --release --example controlled_experiment
//! ```

use inetgen::{CountrySelection, GenConfig};
use scanner::{run_campaign, Campaign, CampaignConfig, HoneypotSensor, SensorKind};

fn main() {
    println!("== Controlled experiment: do popular campaigns see our sensors? ==\n");

    let mut matrix = analysis::TextTable::new(["Scanner", "IP1", "IP2", "IP3", "IP4"]);
    for campaign in Campaign::all() {
        // Fresh world per campaign so sensor rate limiting doesn't couple
        // the campaigns (the paper runs them over separate weeks).
        let config = GenConfig {
            countries: CountrySelection::Codes(vec!["FSM"]),
            scale: 2_000,
            dud_fraction: 0.0,
            ..GenConfig::default()
        };
        let mut internet = inetgen::generate(&config);
        let a = internet.fixtures.sensor_addrs;
        let google = odns::ResolverProject::Google.service_ip();

        internet.sim.install(
            internet.fixtures.sensor1,
            HoneypotSensor::new(SensorKind::RecursiveResolver, google),
        );
        internet.sim.install(
            internet.fixtures.sensor2,
            HoneypotSensor::new(SensorKind::InteriorForwarder { reply_from: a.ip3 }, google),
        );
        internet.sim.install(
            internet.fixtures.sensor3,
            HoneypotSensor::new(SensorKind::ExteriorForwarder, google),
        );

        let report = run_campaign(
            &mut internet.sim,
            internet.fixtures.campaign_scanners[0],
            CampaignConfig::new(campaign, vec![a.ip1, a.ip2, a.ip3, a.ip4]),
        );
        let mark = |found: bool| if found { "  \u{2713}" } else { "  \u{2717}" };
        matrix.row([
            campaign.name().to_string(),
            mark(report.odns.contains(&a.ip1)).to_string(),
            mark(report.odns.contains(&a.ip2)).to_string(),
            mark(report.odns.contains(&a.ip3)).to_string(),
            mark(report.odns.contains(&a.ip4)).to_string(),
        ]);
        println!(
            "{campaign}: probed 4 sensor addresses, reported {:?} (sanitized out: {})",
            report.odns, report.sanitized_out
        );
    }

    println!("\nTable 3 — Detection of our DNS sensors by popular scans:");
    println!("  Sensor 1 = recursive resolver (IP1)");
    println!("  Sensor 2 = interior transparent forwarder (receives IP2, replies IP3)");
    println!("  Sensor 3 = exterior transparent forwarder (IP4, answers come from Google)\n");
    println!("{}", matrix.render());
    println!(
        "All three campaigns find the baseline resolver; none identifies a\n\
         forwarder's probed address. Shadowserver reports Sensor 2's *reply*\n\
         address (stateless, response-based processing); Censys and Shodan\n\
         sanitize the mismatched source away. Sensor 3 is invisible to all —\n\
         exactly the paper's Table 3."
    );
}
