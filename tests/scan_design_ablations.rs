//! Ablations of the transactional scanner's design choices (§4.1/§6):
//!
//! 1. **Unique (port, TXID) tuples.** Without them, responses relayed by
//!    different transparent forwarders through the *same* resolver are
//!    indistinguishable — the ambiguity Figure 7 illustrates.
//! 2. **Static query name.** Encoding targets into names (the query-based
//!    method) floods resolver caches with unique entries — the paper's
//!    cache-pollution argument against it ("resolvers serving >40k
//!    forwarders would take >40k cache entries").

use dnswire::{MessageBuilder, RrType};
use inetgen::{generate, CountrySelection, GenConfig};
use netsim::testkit::ScriptedClient;
use netsim::{SimDuration, UdpSend};
use odns::{RecursiveResolver, ResolverConfig, ResolverProject, TransparentForwarder};
use scanner::{ProbeNaming, ScanConfig};
use std::net::Ipv4Addr;

/// Two forwarders behind one resolver, probed with the *same* (port,
/// TXID): the scanner cannot attribute the two identical responses.
#[test]
fn identical_tuples_are_ambiguous_behind_one_resolver() {
    let config = GenConfig {
        countries: CountrySelection::Codes(vec!["MUS"]),
        scale: 2_000,
        dud_fraction: 0.0,
        ..GenConfig::default()
    };
    let mut internet = generate(&config);
    let google = ResolverProject::Google.service_ip();
    let fwds: Vec<Ipv4Addr> = internet
        .truth
        .transparent_ips()
        .into_iter()
        .take(2)
        .collect();
    assert_eq!(fwds.len(), 2);
    for h in internet.truth.hosts.iter().filter(|h| fwds.contains(&h.ip)) {
        internet
            .sim
            .install(h.node, TransparentForwarder::new(google));
    }

    // A naive scanner: same source port, same TXID for both probes.
    let query = MessageBuilder::query(0x1111, odns::study::study_qname(), RrType::A)
        .recursion_desired(true)
        .build()
        .encode();
    let scanner_node = internet.fixtures.scanner;
    let mut naive = ScriptedClient::new();
    let t0 = naive.push(UdpSend::new(34_000, fwds[0], 53, query.clone()));
    let t1 = naive.push(UdpSend::new(34_000, fwds[1], 53, query));
    internet.sim.install(scanner_node, naive);
    internet
        .sim
        .schedule_timer(scanner_node, SimDuration::ZERO, t0);
    internet
        .sim
        .schedule_timer(scanner_node, SimDuration::from_micros(100), t1);
    internet.sim.run();

    let sc: &ScriptedClient = internet.sim.host_as(scanner_node).unwrap();
    assert_eq!(sc.datagrams.len(), 2, "both answers arrive");
    for (_, d) in &sc.datagrams {
        assert_eq!(d.src, google, "identical source");
        assert_eq!(d.dst_port, 34_000, "identical port");
        let m = dnswire::Message::decode(&d.payload).unwrap();
        assert_eq!(m.header.id, 0x1111, "identical TXID");
        // Every attribute the wire offers is identical except timing and
        // cache-TTL decay: the two transactions cannot be told apart.
    }

    // The real scanner over the same pair: zero ambiguity (asserted in
    // tests/figure7_disambiguation.rs, cross-referenced here).
}

/// The query-encoding method pollutes resolver caches in proportion to
/// the number of forwarders served; the static-name method costs exactly
/// one entry.
#[test]
fn query_encoding_pollutes_resolver_caches() {
    fn pollution(naming: ProbeNaming) -> (u64, u64) {
        let config = GenConfig {
            countries: CountrySelection::Codes(vec!["TUR"]),
            scale: 1_000,
            dud_fraction: 0.0,
            ..GenConfig::default()
        };
        let mut internet = generate(&config);
        // Turkey's local resolver serves almost every forwarder: its cache
        // is where the pollution lands. Find it (the planted resolver with
        // the most forwarder clients).
        let local_resolver = internet
            .truth
            .hosts
            .iter()
            .filter(|h| h.class == inetgen::PlantedClass::RecursiveResolver)
            .map(|h| h.node)
            .next()
            .expect("a local resolver exists");

        let mut scan = ScanConfig::new(internet.targets.clone());
        scan.naming = naming;
        let _ = scanner::run_scan(&mut internet.sim, internet.fixtures.scanner, scan);
        let resolver: &RecursiveResolver = internet.sim.host_as(local_resolver).unwrap();
        (
            resolver.cache().stats.insertions,
            resolver.cache().stats.evictions,
        )
    }

    let (static_insertions, static_evictions) = pollution(ProbeNaming::Static);
    let (encoded_insertions, encoded_evictions) = pollution(ProbeNaming::EncodeTarget);

    assert!(
        static_insertions <= 2,
        "static name costs at most one entry (+1 for a pre-warm), got {static_insertions}"
    );
    assert!(
        encoded_insertions > 50,
        "query encoding must plant one entry per served forwarder, got {encoded_insertions}"
    );
    assert_eq!(static_evictions, 0);
    // The paper's >40k-entries-per-resolver point, scaled: pollution grows
    // linearly with served forwarders while the honest method stays O(1).
    assert!(encoded_insertions >= 25 * static_insertions.max(1));
    let _ = encoded_evictions; // eviction onset depends on cache size; insertions are the signal
}

/// A resolver with a small cache shows actual *evictions* under the
/// query-encoding flood — legitimate entries get displaced (the
/// random-subdomain/water-torture comparison of §6).
#[test]
fn query_encoding_evicts_legitimate_entries() {
    use netsim::testkit::{install_script, playground};
    use netsim::{SimConfig, Simulator};
    use odns::{AuthConfig, DelegatingServer, Delegation, StudyAuthServer};

    const RESOLVER: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 1);
    const ROOT: Ipv4Addr = Ipv4Addr::new(198, 41, 0, 4);
    const TLD: Ipv4Addr = Ipv4Addr::new(198, 41, 1, 4);
    const AUTH: Ipv4Addr = Ipv4Addr::new(198, 41, 2, 4);
    const CLIENT: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 1);

    let (topo, nodes) = playground(&[RESOLVER, ROOT, TLD, AUTH, CLIENT]);
    let mut sim = Simulator::new(topo, SimConfig::default());
    let mut root = DelegatingServer::root();
    root.delegate(Delegation {
        zone: dnswire::DnsName::parse("example.").unwrap(),
        ns_name: dnswire::DnsName::parse("a.nic.example.").unwrap(),
        ns_ip: TLD,
    });
    sim.install(nodes[1], root);
    let mut tld = DelegatingServer::new(dnswire::DnsName::parse("example.").unwrap());
    tld.delegate(Delegation {
        zone: odns::study::study_zone(),
        ns_name: dnswire::DnsName::parse("ns1.odns-study.example.").unwrap(),
        ns_ip: AUTH,
    });
    sim.install(nodes[2], tld);
    sim.install(nodes[3], StudyAuthServer::new(AuthConfig::default()));
    sim.install(
        nodes[0],
        RecursiveResolver::new(ResolverConfig {
            cache_capacity: 32, // tiny cache: pollution bites fast
            ..ResolverConfig::open(vec![ROOT])
        }),
    );

    // A legitimate query first, then a flood of 64 unique encoded names.
    let mut sends = vec![(
        SimDuration::ZERO,
        UdpSend::new(
            40_000,
            RESOLVER,
            53,
            MessageBuilder::query(1, odns::study::study_qname(), RrType::A)
                .recursion_desired(true)
                .build()
                .encode(),
        ),
    )];
    for i in 0..64u16 {
        let name = odns::study::encode_target_name(Ipv4Addr::new(203, 0, (i >> 8) as u8, i as u8));
        sends.push((
            SimDuration::from_millis(200 + u64::from(i) * 50),
            UdpSend::new(
                41_000 + i,
                RESOLVER,
                53,
                MessageBuilder::query(100 + i, name, RrType::A)
                    .recursion_desired(true)
                    .build()
                    .encode(),
            ),
        ));
    }
    // Finally the legitimate name again — it should have been evicted.
    sends.push((
        SimDuration::from_secs(30),
        UdpSend::new(
            40_001,
            RESOLVER,
            53,
            MessageBuilder::query(2, odns::study::study_qname(), RrType::A)
                .recursion_desired(true)
                .build()
                .encode(),
        ),
    ));
    install_script(&mut sim, nodes[4], sends);
    sim.run();

    let resolver: &RecursiveResolver = sim.host_as(nodes[0]).unwrap();
    assert!(resolver.cache().stats.evictions > 0, "pollution must evict");
    // The final repeat of the legitimate name missed the cache (it was
    // evicted by the flood), so the resolver resolved it twice.
    assert!(
        resolver.stats.upstream_queries >= (1 + 64 + 1) * 3 - 2,
        "legitimate entry was re-resolved after eviction: {} upstream",
        resolver.stats.upstream_queries
    );
}
