//! §6 misuse potential: transparent forwarders as *invisible diffusers*
//! for reflective amplification. An attacker spoofs the victim's address
//! in queries sent to many transparent forwarders; the resolvers' (larger)
//! answers converge on the victim, and nothing in them names the
//! forwarders that diffused the attack.

use dnswire::{DnsName, MessageBuilder, RrType};
use inetgen::{generate, CountrySelection, GenConfig};
use netsim::testkit::ScriptedClient;
use netsim::{SimDuration, UdpSend};
use scanner::attacks::AttackVector;
use scanner::OdnsClass;

#[test]
fn spoofed_queries_amplify_at_the_victim() {
    let config = GenConfig {
        countries: CountrySelection::Codes(vec!["BRA"]),
        scale: 2_000,
        dud_fraction: 0.0,
        ..GenConfig::default()
    };
    let mut internet = generate(&config);
    let victim_node = internet.fixtures.victim;
    let victim_ip = internet.fixtures.victim_ip;

    // The attacker sits in a SAV-free network: reuse a planted transparent
    // forwarder's node? No — attackers run their own machines; the sensor
    // network (no SAV) hosts one for us.
    let attacker_node = internet.fixtures.sensor3;
    let attacker_spoof_src = victim_ip;

    // Pick transparent forwarders as diffusers.
    let diffusers: Vec<_> = internet
        .truth
        .transparent_ips()
        .into_iter()
        .take(40)
        .collect();
    assert!(diffusers.len() >= 20, "need diffusers: {}", diffusers.len());

    // ANY queries maximize the response size (§6: "Google allows ANY").
    let query = MessageBuilder::query(
        0xBAD,
        DnsName::parse("odns-study.example.").unwrap(),
        RrType::Any,
    )
    .recursion_desired(true)
    .build()
    .encode();
    let query = netsim::Payload::from(query);
    let query_len = query.len();

    let mut attacker = ScriptedClient::new();
    let mut sends = Vec::new();
    for (i, d) in diffusers.iter().enumerate() {
        let token = attacker.push(UdpSend {
            src: Some(attacker_spoof_src), // the spoof: "from" the victim
            src_port: 4444,
            dst: *d,
            dst_port: 53,
            ttl: None,
            payload: query.clone(),
        });
        sends.push((SimDuration::from_micros(i as u64 * 100), token));
    }
    internet.sim.install(attacker_node, attacker);
    for (delay, token) in sends {
        internet.sim.schedule_timer(attacker_node, delay, token);
    }
    internet.sim.install(victim_node, ScriptedClient::new());
    internet.sim.run();

    let victim: &ScriptedClient = internet.sim.host_as(victim_node).unwrap();
    assert!(
        victim.datagrams.len() >= diffusers.len() / 2,
        "most attack responses reach the victim: {}",
        victim.datagrams.len()
    );

    // Amplification: total bytes at the victim vs attacker's spend.
    let received: usize = victim.datagrams.iter().map(|(_, d)| d.payload.len()).sum();
    let sent = query_len * diffusers.len();
    let factor = received as f64 / sent as f64;
    assert!(
        factor > 1.0,
        "responses must be larger than queries (factor {factor:.2})"
    );

    // Invisibility: no response names a forwarder — they all come from
    // resolver addresses, so the victim cannot identify the diffusers.
    let diffuser_set: std::collections::HashSet<_> = diffusers.iter().collect();
    for (_, d) in &victim.datagrams {
        assert!(
            !diffuser_set.contains(&d.src),
            "response source {} exposes a diffuser",
            d.src
        );
    }
}

#[test]
fn rate_limited_sensors_are_useless_as_amplifiers() {
    // The §3.1 deployment note: sensors answer once per 5 minutes per /24,
    // so an attacker gains nothing by hammering them.
    let config = GenConfig {
        countries: CountrySelection::Codes(vec!["TUR"]),
        scale: 2_000,
        dud_fraction: 0.0,
        ..GenConfig::default()
    };
    let mut internet = generate(&config);
    let sensor_node = internet.fixtures.sensor3;
    let google = odns::ResolverProject::Google.service_ip();
    internet.sim.install(
        sensor_node,
        scanner::HoneypotSensor::new(scanner::SensorKind::ExteriorForwarder, google),
    );
    let victim_node = internet.fixtures.victim;
    let victim_ip = internet.fixtures.victim_ip;
    internet.sim.install(victim_node, ScriptedClient::new());

    // 100 spoofed queries, 10 ms apart, from one attacker box. The box
    // must sit in a SAV-free network to spoof at all; any transparent
    // forwarder's node qualifies (we repurpose its node as the attacker's
    // machine, replacing the forwarder logic below).
    let attacker_node = internet
        .truth
        .hosts
        .iter()
        .find(|h| h.class == inetgen::PlantedClass::TransparentForwarder)
        .expect("any transparent forwarder node")
        .node;

    let query = MessageBuilder::query(1, odns::study::study_qname(), RrType::Any)
        .recursion_desired(true)
        .build()
        .encode();
    let query = netsim::Payload::from(query);
    let mut attacker = ScriptedClient::new();
    let mut sends = Vec::new();
    for i in 0..100u64 {
        let token = attacker.push(UdpSend {
            src: Some(victim_ip),
            src_port: 5555,
            dst: internet.fixtures.sensor_addrs.ip4,
            dst_port: 53,
            ttl: None,
            payload: query.clone(),
        });
        sends.push((SimDuration::from_millis(i * 10), token));
    }
    internet.sim.install(attacker_node, attacker);
    for (delay, token) in sends {
        internet.sim.schedule_timer(attacker_node, delay, token);
    }
    internet.sim.run();

    let victim: &ScriptedClient = internet.sim.host_as(victim_node).unwrap();
    assert!(
        victim.datagrams.len() <= 1,
        "rate limiting must cap the reflected volume, got {}",
        victim.datagrams.len()
    );
}

#[test]
fn attack_matrix_reports_per_component_amplification() {
    // The generalized §6 instrument: the full attack sweep over one world,
    // checked against the ground truth of the same generation config.
    let config = GenConfig {
        countries: CountrySelection::Codes(vec!["BRA"]),
        scale: 2_000,
        dud_fraction: 0.0,
        ..GenConfig::default()
    };
    let matrix = analysis::run_attacks_sharded(&config, 1);

    // Every component class amplifies under every vector — the factor the
    // matrix exists to report.
    for class in OdnsClass::all() {
        for vector in AttackVector::all() {
            let cell = matrix
                .cell(vector, class)
                .unwrap_or_else(|| panic!("{vector}/{class:?} cell missing"));
            assert!(cell.queries > 0, "{vector}/{class:?}: pass never fired");
            assert!(
                cell.amplification() > 1.0,
                "{vector}/{class:?}: factor {:.2}",
                cell.amplification()
            );
        }
    }

    // The EDNS vector pays OPT overhead per query while this zoo answers
    // within 512 bytes regardless, so per class it reflects the same bytes
    // at a strictly worse rate than plain ANY.
    for class in OdnsClass::all() {
        let any = matrix.cell(AttackVector::Any, class).unwrap();
        let edns = matrix.cell(AttackVector::EdnsAny, class).unwrap();
        assert_eq!(any.responses, edns.responses, "{class:?}: same reflectors");
        assert_eq!(any.bytes_at_victim, edns.bytes_at_victim);
        assert!(edns.amplification() < any.amplification());
    }

    // Invisibility, per component: the transparent-forwarder pass arrives
    // at the victim exclusively from resolver addresses, while recursive
    // forwarders and resolvers expose themselves.
    let truth = generate(&config).truth;
    let tf_cell = matrix
        .cell(AttackVector::Any, OdnsClass::TransparentForwarder)
        .unwrap();
    for diffuser in truth.transparent_ips() {
        assert!(
            !tf_cell.sources.contains(&diffuser),
            "response source {diffuser} exposes a diffuser"
        );
    }
    let rf_cell = matrix
        .cell(AttackVector::Any, OdnsClass::RecursiveForwarder)
        .unwrap();
    assert!(
        truth
            .hosts
            .iter()
            .filter(|h| h.class == inetgen::PlantedClass::RecursiveForwarder)
            .any(|h| rf_cell.sources.contains(&h.ip)),
        "recursive forwarders answer as themselves"
    );

    // The sensors' rate limiters make them useless in the same matrix: the
    // flood row sheds nearly everything and the victim sees one answer per
    // sensor instance.
    assert!(matrix.sensors.rate_limited > matrix.sensors.answered);
    assert_eq!(matrix.sensors.victim.packets, matrix.sensors.answered);
}
