//! Appendix D / Figure 7: two transparent forwarders relay to the *same*
//! recursive resolver; the scanner receives two responses from one source
//! address and must attribute each to the right probe via its unique
//! `(source port, transaction ID)` tuple. The second response is served
//! from the resolver's cache, visible as a decayed TTL (300 → lower).

use dnswire::Message;
use inetgen::{generate, CountrySelection, GenConfig};
use netsim::SimDuration;
use odns::TransparentForwarder;
use scanner::{ScanConfig, TransactionalScanner};
use std::net::Ipv4Addr;

#[test]
fn same_resolver_two_forwarders_disambiguated() {
    // A tiny world provides the resolver hierarchy; add two transparent
    // forwarders pointed at the same public resolver.
    let config = GenConfig {
        countries: CountrySelection::Codes(vec!["MUS"]),
        scale: 2_000,
        dud_fraction: 0.0,
        ..GenConfig::default()
    };
    let mut internet = generate(&config);
    let google = odns::ResolverProject::Google.service_ip();

    // Find two planted transparent forwarders relaying to Google; if the
    // mix gave fewer, retarget the first two.
    let targets: Vec<Ipv4Addr> = internet
        .truth
        .transparent_ips()
        .into_iter()
        .take(2)
        .collect();
    assert_eq!(targets.len(), 2, "need two transparent forwarders");
    for h in internet
        .truth
        .hosts
        .iter()
        .filter(|h| targets.contains(&h.ip))
    {
        internet
            .sim
            .install(h.node, TransparentForwarder::new(google));
    }

    // Probe both, 250 simulated seconds apart, so the second answer has a
    // visibly decayed cache TTL (Figure 7: 300 vs 50).
    let mut cfg = ScanConfig::new(targets.clone());
    cfg.inter_probe_gap = SimDuration::from_secs(250);
    let scanner_node = internet.fixtures.scanner;
    internet
        .sim
        .install(scanner_node, TransactionalScanner::new(cfg));
    internet
        .sim
        .schedule_timer(scanner_node, SimDuration::ZERO, u64::MAX);
    internet.sim.run();
    let outcome = internet
        .sim
        .host_as::<TransactionalScanner>(scanner_node)
        .unwrap()
        .outcome();

    assert_eq!(outcome.transactions.len(), 2);
    let t1 = &outcome.transactions[0];
    let t2 = &outcome.transactions[1];

    // Both answered from the same resolver address...
    assert_eq!(t1.response_src(), Some(google));
    assert_eq!(t2.response_src(), Some(google));
    // ...yet unambiguously attributed: distinct (port, txid) tuples.
    assert_ne!(
        (t1.probe.src_port, t1.probe.txid),
        (t2.probe.src_port, t2.probe.txid)
    );
    assert_eq!(
        outcome.unmatched_responses, 0,
        "no ambiguity despite one source"
    );

    // Figure 7's TTL signal: first answer fresh (300), second from cache.
    let ttl_of = |t: &scanner::Transaction| -> u32 {
        let m = Message::decode(&t.response.as_ref().unwrap().payload).unwrap();
        m.answers[0].ttl
    };
    assert_eq!(ttl_of(t1), odns::study::ANSWER_TTL);
    assert_eq!(
        ttl_of(t2),
        odns::study::ANSWER_TTL - 250,
        "cache decayed by the probe gap"
    );
}
