//! The central end-to-end property: the transactional scanning pipeline
//! must *re-discover* the planted ODNS population through wire-level
//! measurement alone — transparent forwarders included, which is exactly
//! what response-only campaigns cannot do (§3/§4).

use inetgen::{generate, GenConfig, PlantedClass};
use scanner::{ClassifierConfig, OdnsClass};

#[test]
fn census_recovers_planted_population() {
    let config = GenConfig::test_small();
    let mut internet = generate(&config);

    let planted_transparent = internet.truth.count(PlantedClass::TransparentForwarder);
    let planted_recursive = internet.truth.count(PlantedClass::RecursiveForwarder);
    let planted_resolvers = internet.truth.count(PlantedClass::RecursiveResolver);
    let planted_manipulated = internet.truth.count(PlantedClass::ManipulatedForwarder);
    assert!(
        planted_transparent > 100,
        "world too small: {planted_transparent}"
    );

    let census = analysis::run_census(&mut internet, &ClassifierConfig::default());

    let found_transparent = census.count(OdnsClass::TransparentForwarder);
    let found_recursive = census.count(OdnsClass::RecursiveForwarder);
    let found_resolvers = census.count(OdnsClass::RecursiveResolver);

    // Transparent forwarders: every planted one must be discovered (their
    // networks have no SAV by construction, and the sim is lossless here).
    assert_eq!(
        found_transparent, planted_transparent,
        "all planted transparent forwarders must be found"
    );
    assert_eq!(found_recursive, planted_recursive);
    assert_eq!(found_resolvers, planted_resolvers);

    // Manipulated hosts answered but failed the control-record check.
    assert!(
        census.discarded(scanner::Discard::ControlRecordViolated) >= planted_manipulated,
        "manipulated responders must be discarded, not classified"
    );

    // Table 1's share: ~26 % transparent.
    let share = census.share(OdnsClass::TransparentForwarder);
    assert!((0.18..0.35).contains(&share), "transparent share {share}");

    // Dud targets never respond.
    assert!(
        census.discarded(scanner::Discard::NoResponse) > 0,
        "dud targets must stay silent"
    );
}

#[test]
fn classification_is_correct_per_host_not_just_in_aggregate() {
    let config = GenConfig::test_small();
    let mut internet = generate(&config);
    let truth: std::collections::HashMap<std::net::Ipv4Addr, PlantedClass> = internet
        .truth
        .hosts
        .iter()
        .map(|h| (h.ip, h.class))
        .collect();

    let census = analysis::run_census(&mut internet, &ClassifierConfig::default());

    let mut mismatches = Vec::new();
    for row in &census.rows {
        let Some(found) = row.class() else { continue };
        let Some(&planted) = truth.get(&row.target) else {
            mismatches.push(format!(
                "{}: classified {found} but nothing planted",
                row.target
            ));
            continue;
        };
        let expected = match planted {
            PlantedClass::TransparentForwarder => OdnsClass::TransparentForwarder,
            PlantedClass::RecursiveForwarder => OdnsClass::RecursiveForwarder,
            PlantedClass::RecursiveResolver => OdnsClass::RecursiveResolver,
            PlantedClass::ManipulatedForwarder => {
                mismatches.push(format!(
                    "{}: manipulated host classified as {found}",
                    row.target
                ));
                continue;
            }
        };
        if found != expected {
            mismatches.push(format!(
                "{}: planted {planted:?}, classified {found}",
                row.target
            ));
        }
    }
    assert!(
        mismatches.is_empty(),
        "{} misclassifications, first few: {:#?}",
        mismatches.len(),
        mismatches.iter().take(5).collect::<Vec<_>>()
    );
}

#[test]
fn relaxed_classifier_counts_like_shadowserver() {
    // §4.2: "Omitting this step in our method leads to similar numbers
    // than Shadowserver" — without the strict two-record requirement the
    // manipulated hosts are classified instead of discarded.
    let config = GenConfig::test_small();

    let mut strict_world = generate(&config);
    let strict = analysis::run_census(&mut strict_world, &ClassifierConfig::default());

    let mut relaxed_world = generate(&config);
    let relaxed = analysis::run_census(&mut relaxed_world, &ClassifierConfig::relaxed());

    let planted_manipulated = strict_world.truth.count(PlantedClass::ManipulatedForwarder);
    assert!(
        planted_manipulated > 0,
        "world must contain manipulated hosts"
    );
    assert_eq!(
        relaxed.odns_total(),
        strict.odns_total() + planted_manipulated,
        "relaxed mode counts exactly the manipulated responders on top"
    );
}
