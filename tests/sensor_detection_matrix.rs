//! Table 3: the §3 controlled experiment. Three honeypot sensors, three
//! campaign emulations — which campaign discovers which sensor address?
//!
//! Expected matrix (paper, Table 3):
//!
//! ```text
//!                 IP1   IP2   IP3   IP4
//! Shadowserver     ✓     ✗     ✓     ✗
//! Censys           ✓     ✗     ✗     ✗
//! Shodan           ✓     ✗     ✗     ✗
//! ```

use inetgen::{generate, CountrySelection, GenConfig};
use scanner::{run_campaign, Campaign, CampaignConfig, HoneypotSensor, SensorKind};
use std::net::Ipv4Addr;

fn detection_row(campaign: Campaign) -> (bool, bool, bool, bool) {
    // Minimal world: fixtures only (one tiny country keeps generation fast).
    let config = GenConfig {
        countries: CountrySelection::Codes(vec!["FSM"]),
        scale: 2_000,
        dud_fraction: 0.0,
        ..GenConfig::default()
    };
    let mut internet = generate(&config);
    let a = internet.fixtures.sensor_addrs;
    let google = odns::ResolverProject::Google.service_ip();

    internet.sim.install(
        internet.fixtures.sensor1,
        HoneypotSensor::new(SensorKind::RecursiveResolver, google),
    );
    internet.sim.install(
        internet.fixtures.sensor2,
        HoneypotSensor::new(SensorKind::InteriorForwarder { reply_from: a.ip3 }, google),
    );
    internet.sim.install(
        internet.fixtures.sensor3,
        HoneypotSensor::new(SensorKind::ExteriorForwarder, google),
    );

    // The campaign probes all four sensor addresses (among everything else
    // it would scan; the rest is irrelevant for the matrix).
    let targets: Vec<Ipv4Addr> = vec![a.ip1, a.ip2, a.ip3, a.ip4];
    let node = internet.fixtures.campaign_scanners[0];
    let report = run_campaign(
        &mut internet.sim,
        node,
        CampaignConfig::new(campaign, targets),
    );

    (
        report.odns.contains(&a.ip1),
        report.odns.contains(&a.ip2),
        report.odns.contains(&a.ip3),
        report.odns.contains(&a.ip4),
    )
}

#[test]
fn shadowserver_row() {
    let (ip1, ip2, ip3, ip4) = detection_row(Campaign::Shadowserver);
    assert!(ip1, "baseline recursive-resolver sensor must be found");
    assert!(
        !ip2,
        "the probed address of the interior forwarder is missed"
    );
    assert!(
        ip3,
        "the *replying* address is reported instead (stateless processing)"
    );
    assert!(
        !ip4,
        "the exterior forwarder is invisible: its answers come from Google"
    );
}

#[test]
fn censys_row() {
    let (ip1, ip2, ip3, ip4) = detection_row(Campaign::Censys);
    assert!(ip1);
    assert!(!ip2);
    assert!(!ip3, "source-mismatched answers are sanitized away");
    assert!(!ip4);
}

#[test]
fn shodan_row() {
    let (ip1, ip2, ip3, ip4) = detection_row(Campaign::Shodan);
    assert!(ip1);
    assert!(!ip2);
    assert!(!ip3);
    assert!(!ip4);
}

#[test]
fn transactional_scan_finds_all_sensors() {
    // The study's own scanner, by contrast, classifies every sensor.
    let config = GenConfig {
        countries: CountrySelection::Codes(vec!["FSM"]),
        scale: 2_000,
        dud_fraction: 0.0,
        ..GenConfig::default()
    };
    let mut internet = generate(&config);
    let a = internet.fixtures.sensor_addrs;
    let google = odns::ResolverProject::Google.service_ip();
    internet.sim.install(
        internet.fixtures.sensor1,
        HoneypotSensor::new(SensorKind::RecursiveResolver, google),
    );
    internet.sim.install(
        internet.fixtures.sensor2,
        HoneypotSensor::new(SensorKind::InteriorForwarder { reply_from: a.ip3 }, google),
    );
    internet.sim.install(
        internet.fixtures.sensor3,
        HoneypotSensor::new(SensorKind::ExteriorForwarder, google),
    );

    let outcome = scanner::run_scan(
        &mut internet.sim,
        internet.fixtures.scanner,
        scanner::ScanConfig::new(vec![a.ip1, a.ip2, a.ip4]),
    );
    let verdicts: Vec<_> = outcome
        .transactions
        .iter()
        .map(|t| scanner::classify(t, &scanner::ClassifierConfig::default()).class())
        .collect();
    // Sensor 1 answers from the probed address but resolves via Google
    // (the paper's sensors all do, §3.1), so the transactional method
    // correctly sees a recursive *forwarder* at IP1.
    assert_eq!(
        verdicts[0],
        Some(scanner::OdnsClass::RecursiveForwarder),
        "sensor 1 at IP1"
    );
    assert_eq!(
        verdicts[1],
        Some(scanner::OdnsClass::TransparentForwarder),
        "sensor 2: reply from IP3 ≠ probed IP2"
    );
    assert_eq!(
        verdicts[2],
        Some(scanner::OdnsClass::TransparentForwarder),
        "sensor 3: reply from Google ≠ probed IP4"
    );
}
