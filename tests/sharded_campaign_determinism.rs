//! Shard-count invariance of the campaign & sensor experiment engine —
//! the mirror of `sharded_dnsroute_determinism.rs` for the §3 controlled
//! experiment and the campaign emulations.
//!
//! Contract: partitioning the synthetic Internet into K shard worlds
//! changes wall-clock behavior only. The Table 3 campaign × sensor
//! detection matrix, the Table 5 per-campaign ODNS component counts, the
//! merged census, and the merged sensor counters (including the 5-minute
//! /24 rate limiter's shed totals) are identical for every K — K = 1 is
//! bit-identical (timestamps and pcap captures included) to the unsharded
//! scan-then-campaigns composition — and everything is reproducible from
//! the per-shard captures alone.

use analysis::campaign_sweep::{
    collect_sensor_totals, install_sensors, sensor_targets, DetectionMatrix, CAMPAIGN_EPOCH,
};
use inetgen::{CountrySelection, GenConfig, ShardSpec};
use netsim::SimDuration;
use scanner::{
    run_campaign_delayed, Campaign, CampaignConfig, ClassifierConfig, OdnsClass, ScanConfig,
    SensorStats,
};

fn test_config() -> GenConfig {
    GenConfig {
        countries: CountrySelection::Codes(vec!["BRA", "TUR", "MUS", "FSM"]),
        scale: 2_500,
        dud_fraction: 0.05,
        ..GenConfig::default()
    }
}

fn census_counts(census: &analysis::Census) -> (usize, usize, usize, usize) {
    (
        census.odns_total(),
        census.count(OdnsClass::TransparentForwarder),
        census.count(OdnsClass::RecursiveForwarder),
        census.count(OdnsClass::RecursiveResolver),
    )
}

#[test]
fn k1_bit_identical_to_unsharded_campaign_sensor_path() {
    let config = test_config();
    let classifier = ClassifierConfig::default();

    // The unsharded composition, from primitives: generate → deploy
    // sensors → tapped transactional scan → three tapped, epoch-spaced
    // campaign passes over targets + sensor addresses.
    let mut internet = inetgen::generate(&config);
    install_sensors(&mut internet);
    let addrs = internet.fixtures.sensor_addrs;
    let scanner_node = internet.fixtures.scanner;
    internet.sim.tap(scanner_node);
    let (probes, responses, _retries) = scanner::run_scan_raw(
        &mut internet.sim,
        scanner_node,
        ScanConfig::new(internet.targets.clone()),
    );
    let scan_capture = internet.sim.take_capture(scanner_node).unwrap();
    let outcome = scanner::correlate(&probes, &responses, ScanConfig::DEFAULT_TIMEOUT);
    let mut census =
        analysis::Census::from_transactions(&outcome.transactions, &internet.geo, &classifier);
    census.unmatched_responses = outcome.unmatched_responses;
    census.late_responses = outcome.late_responses;

    let mut targets = internet.targets.clone();
    targets.extend(sensor_targets(ShardSpec::solo(), addrs));
    let mut reports = Vec::new();
    let mut campaign_captures = Vec::new();
    for (i, campaign) in Campaign::all().into_iter().enumerate() {
        let node = internet.fixtures.campaign_scanners[i];
        internet.sim.tap(node);
        let delay = if i == 0 {
            SimDuration::ZERO
        } else {
            CAMPAIGN_EPOCH
        };
        let report = run_campaign_delayed(
            &mut internet.sim,
            node,
            CampaignConfig::new(campaign, targets.clone()),
            delay,
        );
        let capture = internet.sim.take_capture(node).unwrap();
        reports.push((campaign, report));
        campaign_captures.push((campaign, capture));
    }
    let sensors = collect_sensor_totals(&internet.sim, &internet.fixtures);

    // K = 1 must be the same event sequence, not merely the same
    // aggregates: census rows, reports, counters, and raw capture bytes
    // (timestamps included) all match.
    let sweep = analysis::run_campaign_sharded(&config, 1, &classifier);
    assert_eq!(sweep.census, census);
    assert_eq!(sweep.reports, reports);
    assert_eq!(sweep.sensors, sensors);
    assert_eq!(sweep.matrix, DetectionMatrix::from_reports(&reports, addrs));
    assert_eq!(sweep.captures.len(), 1);
    assert_eq!(sweep.captures[0].scan, scan_capture);
    assert_eq!(sweep.captures[0].campaigns, campaign_captures);
}

#[test]
fn table3_and_table5_invariant_across_shard_counts() {
    let config = test_config();
    let classifier = ClassifierConfig::default();
    let baseline = analysis::run_campaign_sharded(&config, 1, &classifier);

    assert_eq!(
        baseline.matrix,
        DetectionMatrix::paper_expected(),
        "Table 3 must come out of the merged reports:\n{}",
        baseline.matrix.render().render()
    );
    let base_counts = baseline.component_counts();
    assert!(
        base_counts.iter().all(|(_, n)| *n > 0),
        "every campaign reports components: {base_counts:?}"
    );
    // Shadowserver counts responders Censys/Shodan sanitize away, and the
    // strict census sees what no campaign does; the per-country join is
    // the Table 5 material.
    let shadow_by_country = baseline.country_counts(Campaign::Shadowserver);
    assert!(!shadow_by_country.is_empty());
    assert!(!baseline.table5(10).render().is_empty());

    for k in [2u32, 8] {
        let sweep = analysis::run_campaign_sharded(&config, k, &classifier);
        assert_eq!(
            census_counts(&sweep.census),
            census_counts(&baseline.census),
            "census counts diverged at K={k}"
        );
        assert_eq!(sweep.matrix, baseline.matrix, "Table 3 diverged at K={k}");
        assert_eq!(
            sweep.component_counts(),
            base_counts,
            "Table 5 component counts diverged at K={k}"
        );
        for campaign in Campaign::all() {
            assert_eq!(
                sweep.country_counts(campaign),
                baseline.country_counts(campaign),
                "{campaign}: per-country counts diverged at K={k}"
            );
        }
        assert_eq!(sweep.reports, baseline.reports, "reports diverged at K={k}");
        // The satellite regression: merged sensor counters — above all the
        // 5-minute /24 limiter's shed totals — must not depend on the
        // partition. One shed per campaign (sensor 2 receives the IP2 and
        // IP3 probes 50 µs apart from the same scanner /24), three
        // campaigns, whatever K.
        assert_eq!(sweep.sensors, baseline.sensors, "sensor stats at K={k}");
        assert_eq!(sweep.sensors.sensor2.rate_limited, 3);
        assert_eq!(sweep.sensors.rate_limited(), 3);
    }
}

#[test]
fn capture_driven_pipeline_reproduces_live_results() {
    let config = test_config();
    let classifier = ClassifierConfig::default();
    let sweep = analysis::run_campaign_sharded(&config, 2, &classifier);

    // The merged per-shard scan captures alone rebuild the census, row
    // for row — counters included.
    let census = sweep.capture_census(&classifier).expect("captures parse");
    assert_eq!(census, sweep.census);
    assert!(census.odns_total() > 0);

    // Replaying every campaign capture through the campaign's own
    // processing rules rebuilds the published reports.
    let reports = sweep.capture_reports().expect("captures parse");
    assert_eq!(reports, sweep.reports);

    // The joined capture is one valid, openable pcap stream.
    let merged = sweep.merged_capture().expect("captures merge");
    let records = netsim::pcap::read_pcap(&merged).unwrap();
    assert!(
        records.len() > sweep.census.rows.len(),
        "probes + responses"
    );
}

#[test]
fn sensor_experiment_invariant_and_capture_driven() {
    let config = GenConfig {
        countries: CountrySelection::Codes(vec!["FSM"]),
        scale: 2_000,
        dud_fraction: 0.0,
        ..GenConfig::default()
    };
    let baseline = analysis::run_sensors_sharded(&config, 1);
    assert_eq!(baseline.matrix, DetectionMatrix::paper_expected());
    let expected_sensors = analysis::SensorTotals {
        sensor1: SensorStats {
            queries: 3,
            rate_limited: 0,
            upstream: 3,
            answered: 3,
        },
        // Sensor 2 owns IP2 and IP3: the IP3 probe lands 50 µs after the
        // IP2 probe from the same /24 and is shed — once per campaign.
        sensor2: SensorStats {
            queries: 6,
            rate_limited: 3,
            upstream: 3,
            answered: 3,
        },
        sensor3: SensorStats {
            queries: 3,
            rate_limited: 0,
            upstream: 3,
            answered: 0,
        },
        relayed: 3,
    };
    assert_eq!(baseline.sensors, expected_sensors);

    for k in [2u32, 8] {
        let sweep = analysis::run_sensors_sharded(&config, k);
        assert_eq!(sweep.matrix, baseline.matrix, "Table 3 diverged at K={k}");
        assert_eq!(
            sweep.sensors, expected_sensors,
            "merged sensor counters diverged at K={k}"
        );
        assert_eq!(sweep.reports, baseline.reports);
        // Capture-driven: the matrix is reproducible from the campaign
        // taps alone.
        assert_eq!(
            sweep.capture_matrix().expect("captures parse"),
            sweep.matrix
        );
    }
}
