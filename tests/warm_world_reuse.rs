//! Warm-world reuse correctness — the generate-once, scan-many contract.
//!
//! A [`inetgen::ShardWorldCache`] lets repeated sweeps reuse each shard's
//! generated `Internet`, resetting it to its post-generation state between
//! runs instead of rebuilding it. The contract this file pins down: a
//! cached-and-reset shard world produces **bit-identical** census, trace,
//! and campaign outputs to a freshly generated one — for K ∈ {1, 2, 8},
//! across repeated reuses, and across shard-count changes on the same
//! cache. If a reset ever leaked state (resolver caches aside — routes
//! are pure functions of the immutable topology), these comparisons catch
//! it at full output granularity, timestamps and captures included.

use inetgen::{CountrySelection, GenConfig, ShardWorldCache};
use scanner::ClassifierConfig;

fn test_config() -> GenConfig {
    GenConfig {
        countries: CountrySelection::Codes(vec!["BRA", "TUR", "MUS", "FSM"]),
        scale: 2_500,
        dud_fraction: 0.05,
        ..GenConfig::default()
    }
}

#[test]
fn cached_census_is_bit_identical_to_fresh_for_every_k() {
    let config = test_config();
    let classifier = ClassifierConfig::default();
    // One cache across every K: changing the shard count rebuilds the
    // slots, so this also exercises the regenerate-on-repartition path.
    let mut cache = ShardWorldCache::new(config.clone());
    for k in [1u32, 2, 8] {
        let fresh = analysis::run_census_sharded(&config, k, &classifier);
        let cold = analysis::run_census_cached(&mut cache, k, &classifier);
        assert_eq!(cold, fresh, "first cached run diverged at K={k}");
        assert!(fresh.odns_total() > 0, "world must classify components");
        // Second and third runs hit warm worlds (reset, not regenerated).
        for reuse in 1..3 {
            let warm = analysis::run_census_cached(&mut cache, k, &classifier);
            assert_eq!(warm, fresh, "warm reuse {reuse} diverged at K={k}");
        }
        assert_eq!(cache.warm_shards(), k as usize, "all shards cached");
    }
}

#[test]
fn cached_dnsroute_sweep_is_bit_identical_to_fresh() {
    let config = test_config();
    let classifier = ClassifierConfig::default();
    for k in [1u32, 2, 8] {
        let fresh = analysis::run_dnsroute_sharded(&config, k, &classifier);
        assert!(!fresh.traces.is_empty(), "world must contain forwarders");
        let mut cache = ShardWorldCache::new(config.clone());
        analysis::run_dnsroute_cached(&mut cache, k, &classifier); // generate
        let warm = analysis::run_dnsroute_cached(&mut cache, k, &classifier);
        assert_eq!(warm.census, fresh.census, "census diverged at K={k}");
        // Full equality including per-hop timestamps: a warm world replays
        // the same event sequence, not merely the same distributions.
        assert_eq!(warm.traces, fresh.traces, "traces diverged at K={k}");
    }
}

#[test]
fn cached_campaign_sweep_is_bit_identical_to_fresh() {
    let config = test_config();
    let classifier = ClassifierConfig::default();
    for k in [1u32, 2, 8] {
        let fresh = analysis::run_campaign_sharded(&config, k, &classifier);
        let mut cache = ShardWorldCache::new(config.clone());
        analysis::run_campaign_cached(&mut cache, k, &classifier); // generate
        let warm = analysis::run_campaign_cached(&mut cache, k, &classifier);
        assert_eq!(warm.census, fresh.census, "census diverged at K={k}");
        assert_eq!(warm.reports, fresh.reports, "reports diverged at K={k}");
        assert_eq!(warm.matrix, fresh.matrix, "matrix diverged at K={k}");
        // The sensors' /24 limiters live in host state: a leaky reset
        // would leave last run's buckets warm and shed extra queries.
        assert_eq!(warm.sensors, fresh.sensors, "sensors diverged at K={k}");
        // Raw capture bytes, timestamps included.
        assert_eq!(warm.captures.len(), fresh.captures.len());
        for (w, f) in warm.captures.iter().zip(&fresh.captures) {
            assert_eq!(w.shard, f.shard);
            assert_eq!(w.scan, f.scan, "scan capture diverged at K={k}");
            assert_eq!(w.campaigns, f.campaigns, "campaign captures at K={k}");
        }
    }
}
