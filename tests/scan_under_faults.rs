//! Failure injection: the measurement pipeline under packet loss,
//! duplication, and jitter. Loss costs coverage (probes or answers die)
//! but must never cause *misclassification* — the paper's correlation
//! design (unique port/TXID tuples, conservative timeout) guarantees it.

use inetgen::{generate, CountrySelection, GenConfig, PlantedClass, ShardWorldCache};
use netsim::{FaultConfig, FaultPlan, SimDuration};
use scanner::{ClassifierConfig, OdnsClass};
use std::collections::HashMap;

fn world(seed: u64) -> inetgen::Internet {
    let config = GenConfig {
        countries: CountrySelection::Codes(vec!["BRA", "TUR", "DEU"]),
        scale: 2_000,
        dud_fraction: 0.0,
        seed,
        ..GenConfig::default()
    };
    generate(&config)
}

#[test]
fn lossy_network_degrades_coverage_not_correctness() {
    let mut internet = world(11);
    // Rebuild the simulator's fault profile: 10 % loss, duplication, jitter.
    // (Faults are a SimConfig property; regenerate with the same seed and
    // patch the config by reconstructing the simulator is not exposed, so
    // we inject faults via the public SimConfig on generation instead.)
    let truth: HashMap<std::net::Ipv4Addr, PlantedClass> = internet
        .truth
        .hosts
        .iter()
        .map(|h| (h.ip, h.class))
        .collect();

    // Directly run the scan with fault injection enabled in the simulator.
    internet.sim.set_faults(FaultConfig {
        drop_probability: 0.10,
        duplicate_probability: 0.05,
        corrupt_probability: 0.02,
        max_jitter: SimDuration::from_millis(30),
    });
    let census = analysis::run_census(&mut internet, &ClassifierConfig::default());

    let planted = truth
        .values()
        .filter(|c| **c == PlantedClass::TransparentForwarder)
        .count();
    let found = census.count(OdnsClass::TransparentForwarder);
    assert!(found > 0, "some transparent forwarders survive the loss");
    assert!(found <= planted, "loss can only reduce the count");
    let coverage = found as f64 / planted as f64;
    // Per-flow fate compounds over the forwarder chain (probe, relay,
    // recursion, answer are separate flows), so 10 % per-hop loss costs
    // roughly 1 - 0.9^hops of the transparent forwarders — harsh, but it
    // must never obliterate coverage.
    assert!(
        coverage > 0.4,
        "10 % per-hop loss degraded coverage too far: {coverage:.2} ({found}/{planted})"
    );

    // Zero misclassifications among the classified.
    for row in &census.rows {
        let Some(class) = row.class() else { continue };
        let expected = match truth.get(&row.target) {
            Some(PlantedClass::TransparentForwarder) => OdnsClass::TransparentForwarder,
            Some(PlantedClass::RecursiveForwarder) => OdnsClass::RecursiveForwarder,
            Some(PlantedClass::RecursiveResolver) => OdnsClass::RecursiveResolver,
            Some(PlantedClass::ManipulatedForwarder) => {
                panic!("{}: manipulated host must never classify", row.target)
            }
            None => panic!("{}: classified but not planted", row.target),
        };
        assert_eq!(class, expected, "{} misclassified under faults", row.target);
    }

    // Duplicated responses are deduplicated, not double-counted.
    let class_total = census.odns_total();
    assert!(class_total <= truth.len());
}

#[test]
fn duplicates_never_inflate_counts() {
    let mut internet = world(13);
    internet.sim.set_faults(FaultConfig {
        drop_probability: 0.0,
        duplicate_probability: 0.5, // half of all packets duplicated
        corrupt_probability: 0.0,
        max_jitter: SimDuration::from_millis(5),
    });
    let planted_odns = internet
        .truth
        .hosts
        .iter()
        .filter(|h| h.class != PlantedClass::ManipulatedForwarder)
        .count();
    let census = analysis::run_census(&mut internet, &ClassifierConfig::default());
    assert_eq!(
        census.odns_total(),
        planted_odns,
        "duplication must not create phantom ODNS components"
    );
    assert!(
        census.late_answers_discarded > 0,
        "duplicates are deduplicated as late answers"
    );
    assert_eq!(
        census.unmatched_responses, 0,
        "every duplicate still matches a probe tuple"
    );
}

#[test]
fn corruption_discards_but_never_misleads() {
    // Single-bit corruption in transit is always caught by the Internet
    // checksum, so it manifests as loss — never as a forged transaction.
    // (A bit flip *delivered* into the DNS TXID would misattribute the
    // response to a different probe and fabricate a phantom transparent
    // forwarder; the checksum is what makes the correlation trustworthy.)
    let mut internet = world(17);
    internet.sim.set_faults(FaultConfig {
        drop_probability: 0.0,
        duplicate_probability: 0.0,
        corrupt_probability: 0.20, // every fifth packet flips a bit
        max_jitter: SimDuration::ZERO,
    });
    let truth: HashMap<std::net::Ipv4Addr, PlantedClass> = internet
        .truth
        .hosts
        .iter()
        .map(|h| (h.ip, h.class))
        .collect();
    let census = analysis::run_census(&mut internet, &ClassifierConfig::default());

    for row in &census.rows {
        let Some(class) = row.class() else { continue };
        match truth.get(&row.target) {
            Some(PlantedClass::TransparentForwarder) => {
                assert_eq!(class, OdnsClass::TransparentForwarder)
            }
            Some(PlantedClass::RecursiveForwarder) => {
                assert_eq!(class, OdnsClass::RecursiveForwarder)
            }
            Some(PlantedClass::RecursiveResolver) => {
                assert_eq!(class, OdnsClass::RecursiveResolver)
            }
            Some(PlantedClass::ManipulatedForwarder) => {
                panic!("{}: manipulated host classified as {class}", row.target)
            }
            None => panic!("{}: phantom classification", row.target),
        }
    }
    assert!(
        internet.sim.stats().dropped_corrupt > 0,
        "corruption must have been injected"
    );
    // Coverage degrades with loss, which is all corruption can do.
    let planted_odns = truth
        .values()
        .filter(|c| **c != PlantedClass::ManipulatedForwarder)
        .count();
    assert!(
        census.odns_total() < planted_odns,
        "20% corruption must cost coverage"
    );
}

/// The lossy-world determinism contract: a census over worlds generated
/// with a `FaultPlan` in their `GenConfig` is bit-identical across shard
/// counts and warm-cache reruns. The plan is salted from the generation
/// seed and probe tuples switch to the target-keyed scheme on faulty
/// worlds, so every flow's fault verdict is a pure function of the world
/// — not of the partition or of event order.
#[test]
fn lossy_census_is_bit_identical_across_shard_counts_and_warm_reruns() {
    let config = GenConfig {
        countries: CountrySelection::Codes(vec!["BRA", "TUR", "MUS"]),
        scale: 2_500,
        // No duds: dud target IPs are sampled per-world, so a solo world
        // and a shard world agree on dud *counts* but not addresses —
        // irrelevant to fault verdicts, but it would fail row equality.
        dud_fraction: 0.0,
        seed: 23,
        faults: FaultPlan::lossy(0.10),
        ..GenConfig::default()
    };
    let classifier = ClassifierConfig::default();

    let mut solo = generate(&config);
    assert!(solo.sim.faults_active(), "GenConfig faults reach the sim");
    let baseline = analysis::run_census(&mut solo, &classifier);
    assert!(
        baseline.rows.iter().filter(|r| r.class().is_some()).count()
            < solo
                .truth
                .hosts
                .iter()
                .filter(|h| h.class != PlantedClass::ManipulatedForwarder)
                .count(),
        "10% loss must cost some coverage, or the plan never fired"
    );

    let counts = |census: &analysis::Census| {
        (
            census.odns_total(),
            census.count(OdnsClass::TransparentForwarder),
            census.count(OdnsClass::RecursiveForwarder),
            census.count(OdnsClass::RecursiveResolver),
            census.late_answers_discarded,
        )
    };
    for k in [1u32, 2, 8] {
        let sharded = analysis::run_census_sharded(&config, k, &classifier);
        assert_eq!(
            counts(&sharded),
            counts(&baseline),
            "lossy census diverged at K={k}"
        );
        // Full row-set equality, not just counts: sort by target since
        // per-shard probe order is partition-specific.
        let rows = |census: &analysis::Census| {
            let mut rows = census.rows.clone();
            rows.sort_by_key(|r| r.target);
            rows
        };
        assert_eq!(rows(&sharded), rows(&baseline), "row drift at K={k}");
    }

    // Warm-cache rerun: bit-identical to the cold pass.
    let mut cache = ShardWorldCache::new(config);
    let cold = analysis::run_census_cached(&mut cache, 2, &classifier);
    let warm = analysis::run_census_cached(&mut cache, 2, &classifier);
    assert_eq!(cold, warm, "warm lossy rerun must be bit-identical");
    assert_eq!(counts(&cold), counts(&baseline));
}
