//! Figure 6 end-to-end: census → DNSRoute++ over the discovered
//! transparent forwarders → sanitized paths → per-project hop CDFs.
//! The paper's headline shape: Cloudflare's anycast is closest (6.3 hops
//! mean), Google next (7.9), OpenDNS farthest (9.3).

use dnsroute::{run_dnsroute, sanitize, DnsRouteConfig};
use inetgen::{generate, CountrySelection, GenConfig};
use odns::ResolverProject;
use scanner::ClassifierConfig;
use std::collections::BTreeSet;

#[test]
fn path_length_ordering_cloudflare_google_opendns() {
    // A mid-size world with plenty of forwarders across several countries.
    let config = GenConfig {
        countries: CountrySelection::Codes(vec!["BRA", "IND", "USA", "TUR", "ARG"]),
        scale: 1_500,
        dud_fraction: 0.0,
        ..GenConfig::default()
    };
    let mut internet = generate(&config);
    let census = analysis::run_census(&mut internet, &ClassifierConfig::default());
    let targets = census.transparent_targets();
    assert!(
        targets.len() > 100,
        "need a meaningful sweep: {}",
        targets.len()
    );

    let traces = run_dnsroute(
        &mut internet.sim,
        internet.fixtures.scanner,
        DnsRouteConfig::new(targets),
    );
    let (paths, stats) = sanitize(&traces);
    assert!(
        stats.kept > 100,
        "sanitization kept {} of {}",
        stats.kept,
        stats.total()
    );

    let (projects, _other) = analysis::figure6_by_project(&paths, &internet.geo);
    let mean = |p: ResolverProject| -> Option<f64> {
        projects
            .iter()
            .find(|x| x.project == p)
            .map(|x| x.mean_hops())
    };
    let cf = mean(ResolverProject::Cloudflare).expect("cloudflare paths");
    let google = mean(ResolverProject::Google).expect("google paths");
    let opendns = mean(ResolverProject::OpenDns).expect("opendns paths");

    assert!(
        cf < google && google < opendns,
        "Figure 6 ordering must hold: CF {cf:.1} < Google {google:.1} < OpenDNS {opendns:.1}"
    );
    // Absolute hops vary with the sampled AS structure (small worlds are
    // high-variance); the paper-matching property is the ordering plus
    // plausible magnitudes.
    assert!(
        (3.0..9.0).contains(&cf),
        "Cloudflare mean {cf:.1} plausible"
    );
    assert!(
        (4.0..11.0).contains(&google),
        "Google mean {google:.1} plausible"
    );
    assert!(
        (5.0..14.0).contains(&opendns),
        "OpenDNS mean {opendns:.1} plausible"
    );

    // CDFs are well-formed and distinguishable at the median.
    for p in &projects {
        let cdf = p.cdf();
        assert!(!cdf.is_empty());
        assert!(cdf.at(f64::from(u8::MAX)) == 1.0);
    }
}

#[test]
fn classic_traceroute_ablation_sees_nothing_beyond() {
    // §5's motivation: "In contrast to common traceroute, DNSRoute++ ...
    // continues incrementing the TTL when the target is reached." Degrade
    // it to classic traceroute and the forwarder→resolver segment (and
    // thus Figure 6 entirely) disappears.
    let config = GenConfig {
        countries: CountrySelection::Codes(vec!["BRA"]),
        scale: 2_000,
        dud_fraction: 0.0,
        ..GenConfig::default()
    };
    let mut internet = generate(&config);
    let census = analysis::run_census(&mut internet, &ClassifierConfig::default());
    let targets = census.transparent_targets();
    assert!(targets.len() > 20);

    let classic = run_dnsroute(
        &mut internet.sim,
        internet.fixtures.scanner,
        dnsroute::DnsRouteConfig::classic(targets.clone()),
    );
    // The forwarders are still located...
    let located = classic
        .iter()
        .filter(|t| t.target_seen_at.is_some())
        .count();
    assert_eq!(
        located,
        targets.len(),
        "classic traceroute still finds the targets"
    );
    // ...but nothing beyond them is ever observed.
    for t in &classic {
        assert!(
            t.dns.is_none(),
            "{}: classic mode must never reach the resolver",
            t.target
        );
        assert!(t.hops_beyond_target().is_empty());
    }
    let (paths, stats) = sanitize(&classic);
    assert!(
        paths.is_empty(),
        "no Figure 6 data without continuing past the target"
    );
    assert_eq!(stats.rejected_no_answer, targets.len());

    // The full tool on the same world sees every path.
    let mut internet2 = generate(&config);
    let census2 = analysis::run_census(&mut internet2, &ClassifierConfig::default());
    let full = run_dnsroute(
        &mut internet2.sim,
        internet2.fixtures.scanner,
        DnsRouteConfig::new(census2.transparent_targets()),
    );
    let (paths, _) = sanitize(&full);
    assert_eq!(paths.len(), targets.len());
}

#[test]
fn as_relationship_inference_over_real_sweep() {
    let config = GenConfig {
        countries: CountrySelection::Codes(vec!["BRA", "TUR"]),
        scale: 2_000,
        dud_fraction: 0.0,
        ..GenConfig::default()
    };
    let mut internet = generate(&config);
    let census = analysis::run_census(&mut internet, &ClassifierConfig::default());
    let targets = census.transparent_targets();
    let traces = run_dnsroute(
        &mut internet.sim,
        internet.fixtures.scanner,
        DnsRouteConfig::new(targets),
    );
    let (paths, _) = sanitize(&traces);
    assert!(!paths.is_empty());

    // CAIDA-like baseline: 85 % of the true provider-customer pairs are
    // "already classified"; the remainder can be newly discovered.
    let truth: Vec<(u32, u32)> = internet.sim.topology().provider_customer_pairs().to_vec();
    let known: BTreeSet<(u32, u32)> = truth.iter().take(truth.len() * 85 / 100).copied().collect();

    let (report, known_hits, new_pairs) =
        analysis::as_relationship_report(&paths, &internet.geo, &known);
    assert!(report.usable_paths > 0);
    let share = report.matching_share();
    assert!(
        (0.3..=1.0).contains(&share),
        "a majority-ish of paths should have AS_in == AS_out (paper: 62 %), got {share:.2}"
    );
    // Every inferred pair is real (no false positives against ground truth).
    let truth_set: BTreeSet<(u32, u32)> = truth.into_iter().collect();
    for r in &report.inferred {
        assert!(
            truth_set.contains(&(r.provider_asn, r.customer_asn)),
            "inferred pair {}→{} must exist in ground truth",
            r.provider_asn,
            r.customer_asn
        );
    }
    assert!(known_hits + new_pairs > 0);
}
