//! Property tests over the whole pipeline: the recovery guarantee must
//! hold for *any* seed, not just the default — the measurement method is
//! what's validated, not one lucky world.

use inetgen::{generate, CountrySelection, GenConfig, PlantedClass};
use proptest::prelude::*;
use scanner::{ClassifierConfig, OdnsClass};

fn tiny_config(seed: u64) -> GenConfig {
    GenConfig {
        seed,
        countries: CountrySelection::Codes(vec!["BRA", "TUR", "MUS"]),
        scale: 2_500,
        dud_fraction: 0.05,
        ..GenConfig::default()
    }
}

proptest! {
    // End-to-end worlds are expensive; a handful of seeds is plenty to
    // catch seed-dependent logic errors.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn census_recovery_holds_for_any_seed(seed in any::<u64>()) {
        let config = tiny_config(seed);
        let mut internet = generate(&config);
        let planted_t = internet.truth.count(PlantedClass::TransparentForwarder);
        let planted_r = internet.truth.count(PlantedClass::RecursiveForwarder);
        let planted_v = internet.truth.count(PlantedClass::RecursiveResolver);

        let census = analysis::run_census(&mut internet, &ClassifierConfig::default());
        prop_assert_eq!(census.count(OdnsClass::TransparentForwarder), planted_t);
        prop_assert_eq!(census.count(OdnsClass::RecursiveForwarder), planted_r);
        prop_assert_eq!(census.count(OdnsClass::RecursiveResolver), planted_v);
    }

    #[test]
    fn dnsroute_locates_every_discovered_forwarder(seed in any::<u64>()) {
        let config = tiny_config(seed);
        let mut internet = generate(&config);
        let census = analysis::run_census(&mut internet, &ClassifierConfig::default());
        let targets = census.transparent_targets();
        if targets.is_empty() {
            return Ok(());
        }
        let traces = dnsroute::run_dnsroute(
            &mut internet.sim,
            internet.fixtures.scanner,
            dnsroute::DnsRouteConfig::new(targets.clone()),
        );
        let (paths, stats) = dnsroute::sanitize(&traces);
        prop_assert_eq!(stats.kept, targets.len(), "every forwarder must yield a clean path");
        for p in &paths {
            prop_assert!(p.hop_count >= 2, "{}: a relay implies at least 2 hops", p.forwarder);
            prop_assert!(p.hop_count <= 25);
        }
    }

    #[test]
    fn capture_reconstruction_is_lossless(seed in any::<u64>()) {
        // Lever (b)'s guarantee, for any seed and shard count: each
        // shard's pcap capture alone reconstructs that shard's record
        // streams and correlated outcome exactly, and the merged
        // capture-derived census equals the live one row for row.
        let config = tiny_config(seed);
        let k = [1u32, 2, 4][(seed % 3) as usize];
        let run = inetgen::run_sharded(&config, k, |spec, world| {
            let node = world.fixtures.scanner;
            world.sim.tap(node);
            let (probes, responses, _retries) = scanner::run_scan_raw(
                &mut world.sim,
                node,
                scanner::ScanConfig::new(world.targets.clone()),
            );
            let capture = world.sim.take_capture(node).expect("tapped");
            (spec.index, probes, responses, capture)
        });

        let mut live_streams = Vec::new();
        let mut captures = Vec::new();
        for (shard, probes, responses, capture) in run.outputs {
            let (rebuilt_probes, rebuilt_responses) =
                analysis::streams_from_pcap(&capture).expect("capture parses");
            prop_assert_eq!(&rebuilt_probes, &probes, "shard {} probes", shard);
            prop_assert_eq!(&rebuilt_responses, &responses, "shard {} responses", shard);
            let live = scanner::correlate(
                &probes,
                &responses,
                scanner::ScanConfig::DEFAULT_TIMEOUT,
            );
            let rebuilt = analysis::outcome_from_pcap(
                &capture,
                scanner::ScanConfig::DEFAULT_TIMEOUT,
            ).expect("capture parses");
            prop_assert_eq!(&rebuilt, &live, "shard {} correlation", shard);
            live_streams.push(scanner::ShardRecords::new(shard, probes, responses));
            captures.push((shard, capture));
        }

        let classifier = ClassifierConfig::default();
        let merged = scanner::merge_shard_records(
            live_streams,
            scanner::ScanConfig::DEFAULT_TIMEOUT,
        );
        let mut live_census = analysis::Census::from_transactions(
            &merged.transactions,
            &run.geo,
            &classifier,
        );
        live_census.unmatched_responses = merged.unmatched_responses;
        live_census.late_responses = merged.late_responses;
        let capture_census = analysis::census_from_captures(&captures, &run.geo, &classifier)
            .expect("captures parse");
        prop_assert_eq!(&capture_census, &live_census, "K={} census", k);
        prop_assert!(capture_census.odns_total() > 0, "world must answer");
    }

    #[test]
    fn duplication_never_double_counts(seed in any::<u64>()) {
        // Wire duplication (no loss, no corruption) must be invisible in
        // every tally that counts *things*, not packets: census rows stay
        // exactly the planted set, every duplicate correlates to its probe
        // and is discarded as a late answer, and the attack matrix keeps
        // its spend and attribution — duplicates may only add wire bytes
        // on the victim side, which is faithful accounting, not a bug.
        let duplication = netsim::FaultConfig {
            drop_probability: 0.0,
            duplicate_probability: 0.5,
            corrupt_probability: 0.0,
            max_jitter: netsim::SimDuration::from_millis(5),
        };

        let mut config = tiny_config(seed);
        config.faults = netsim::FaultPlan::uniform(duplication);
        let mut internet = generate(&config);
        let planted_t = internet.truth.count(PlantedClass::TransparentForwarder);
        let planted_r = internet.truth.count(PlantedClass::RecursiveForwarder);
        let planted_v = internet.truth.count(PlantedClass::RecursiveResolver);
        let census = analysis::run_census(&mut internet, &ClassifierConfig::default());
        prop_assert_eq!(census.count(OdnsClass::TransparentForwarder), planted_t);
        prop_assert_eq!(census.count(OdnsClass::RecursiveForwarder), planted_r);
        prop_assert_eq!(census.count(OdnsClass::RecursiveResolver), planted_v);
        prop_assert_eq!(census.unmatched_responses, 0, "every copy still matches its probe");
        prop_assert!(census.late_answers_discarded > 0, "the copies were seen and discarded");

        // Attack matrix: same world with and without duplication.
        let attack_world = |faults: netsim::FaultPlan| GenConfig {
            seed,
            countries: CountrySelection::Codes(vec!["BRA", "MUS"]),
            scale: 1_000,
            dud_fraction: 0.0,
            faults,
            ..GenConfig::default()
        };
        let clean = analysis::attack_sweep::run_attacks_sharded(
            &attack_world(netsim::FaultPlan::none()), 2);
        let dup = analysis::attack_sweep::run_attacks_sharded(
            &attack_world(netsim::FaultPlan::uniform(duplication)), 2);
        prop_assert_eq!(
            clean.cells.keys().collect::<Vec<_>>(),
            dup.cells.keys().collect::<Vec<_>>()
        );
        for (key, clean_cell) in &clean.cells {
            let dup_cell = &dup.cells[key];
            prop_assert_eq!(
                dup_cell.queries, clean_cell.queries,
                "{:?}: attacker spend is counted at send time, never per copy", key
            );
            prop_assert_eq!(dup_cell.bytes_sent, clean_cell.bytes_sent, "{:?}", key);
            prop_assert_eq!(
                &dup_cell.sources, &clean_cell.sources,
                "{:?}: duplication must not invent reflector addresses", key
            );
            prop_assert!(
                dup_cell.responses >= clean_cell.responses,
                "{:?}: copies only ever add victim-side packets", key
            );
        }
        prop_assert_eq!(dup.sensors.attack_queries, clean.sensors.attack_queries);
    }

    #[test]
    fn geo_database_is_consistent_with_truth(seed in any::<u64>()) {
        let config = tiny_config(seed);
        let internet = generate(&config);
        for h in internet.truth.hosts.iter().take(500) {
            if let Some(asn) = internet.geo.asn_of(h.ip) {
                prop_assert_eq!(asn, h.asn);
                prop_assert_eq!(internet.geo.country_of_asn(asn), Some(h.country));
            }
        }
    }
}
