//! Shard-count invariance of the §6 attack experiment engine — the
//! mirror of `sharded_campaign_determinism.rs` for the adversarial suite.
//!
//! Contract: partitioning the synthetic Internet into K shard worlds
//! changes wall-clock behavior only. The merged [`AttackMatrix`] — every
//! per-(vector, component) amplification cell, byte for byte, source set
//! for source set, and the sensor-efficacy row including the 5-minute /24
//! limiter's shed totals — is identical for K ∈ {1, 2, 8}, and repeated
//! runs over a warm [`ShardWorldCache`] reproduce it bit-identically.

use analysis::attack_sweep::{run_attacks_cached, run_attacks_sharded, FLOOD_REPEATS};
use inetgen::{CountrySelection, GenConfig, ShardWorldCache};
use scanner::attacks::AttackVector;
use scanner::OdnsClass;

fn test_config() -> GenConfig {
    GenConfig {
        countries: CountrySelection::Codes(vec!["BRA", "TUR", "MUS", "FSM"]),
        scale: 2_500,
        dud_fraction: 0.05,
        ..GenConfig::default()
    }
}

#[test]
fn attack_matrix_invariant_across_shard_counts() {
    let config = test_config();
    let baseline = run_attacks_sharded(&config, 1);

    // Semantic floor before comparing partitions: every reflection pass
    // fired, got answers, and amplified — the §6 claim itself.
    assert_eq!(baseline.cells.len(), 9, "3 vectors × 3 component classes");
    for ((vector, class), cell) in &baseline.cells {
        assert!(cell.queries > 0, "{vector}/{class:?}: no queries sent");
        assert!(
            cell.responses > 0,
            "{vector}/{class:?}: nothing reached the victim"
        );
        assert!(
            cell.amplification() > 1.0,
            "{vector}/{class:?}: factor {:.2} — responses must outweigh queries",
            cell.amplification()
        );
        assert!(!cell.sources.is_empty());
    }
    // The EDNS vector costs more per query and buys nothing from this zoo
    // (the simulated servers answer within 512 bytes regardless), so its
    // factor is strictly below plain ANY for the same component class.
    for class in OdnsClass::all() {
        let any = baseline.cell(AttackVector::Any, class).unwrap();
        let edns = baseline.cell(AttackVector::EdnsAny, class).unwrap();
        assert!(edns.bytes_sent > any.bytes_sent, "{class:?}: OPT overhead");
        assert!(edns.amplification() < any.amplification());
    }
    // The limiter-efficacy row: 25 flood cycles over the three sensor
    // addresses inside one 5-minute window — each sensor instance answers
    // exactly once for the victim /24 and sheds everything else.
    let s = &baseline.sensors;
    assert_eq!(s.attack_queries, u64::from(FLOOD_REPEATS) * 3);
    assert_eq!(s.queries, s.attack_queries, "every flood query arrived");
    assert_eq!(s.answered, 2, "one answer per sensor instance");
    assert_eq!(s.rate_limited, s.queries - 2);
    assert_eq!(s.victim.packets, 2, "the limiter caps the reflected volume");

    for k in [2u32, 8] {
        let sweep = run_attacks_sharded(&config, k);
        assert_eq!(sweep, baseline, "AttackMatrix diverged at K={k}");
    }
}

#[test]
fn warm_cache_reruns_are_bit_identical() {
    let config = test_config();
    let fresh = run_attacks_sharded(&config, 2);

    let mut cache = ShardWorldCache::new(config);
    let first = run_attacks_cached(&mut cache, 2);
    let second = run_attacks_cached(&mut cache, 2);
    assert_eq!(first, fresh, "cold cache run must match the fresh driver");
    assert_eq!(
        second, fresh,
        "warm reuse must reset attacker, meter, and limiter state exactly"
    );
}
