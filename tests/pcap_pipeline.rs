//! The capture-driven pipeline: like the paper's zmap+dumpcap artifact,
//! the whole analysis must be computable from the scanner's pcap alone —
//! no in-memory scanner state.

use inetgen::{generate, CountrySelection, GenConfig, PlantedClass};
use netsim::SimDuration;
use scanner::{ClassifierConfig, ScanConfig};

#[test]
fn census_from_capture_matches_in_memory_census() {
    let config = GenConfig {
        countries: CountrySelection::Codes(vec!["BRA", "MUS"]),
        scale: 2_000,
        dud_fraction: 0.05,
        ..GenConfig::default()
    };
    let mut internet = generate(&config);
    let scanner_node = internet.fixtures.scanner;

    // Capture everything the scanner sends/receives, dumpcap-style.
    internet.sim.tap(scanner_node);
    let outcome = scanner::run_scan(
        &mut internet.sim,
        scanner_node,
        ScanConfig::new(internet.targets.clone()),
    );
    let pcap = internet
        .sim
        .take_capture(scanner_node)
        .expect("capture enabled");
    assert!(!pcap.is_empty());

    // Rebuild transactions from the capture only.
    let rebuilt = analysis::outcome_from_pcap(&pcap, SimDuration::from_secs(20)).unwrap();
    assert_eq!(rebuilt.transactions.len(), outcome.transactions.len());

    let classifier = ClassifierConfig::default();
    let census_mem =
        analysis::Census::from_transactions(&outcome.transactions, &internet.geo, &classifier);
    let census_pcap =
        analysis::Census::from_transactions(&rebuilt.transactions, &internet.geo, &classifier);

    for class in scanner::OdnsClass::all() {
        assert_eq!(
            census_mem.count(class),
            census_pcap.count(class),
            "pcap-derived census must agree for {class}"
        );
    }
    assert_eq!(census_mem.odns_total(), census_pcap.odns_total());

    // And both recover the planted truth.
    let planted_transparent = internet.truth.count(PlantedClass::TransparentForwarder);
    assert_eq!(
        census_pcap.count(scanner::OdnsClass::TransparentForwarder),
        planted_transparent
    );
}

#[test]
fn capture_contains_valid_wire_packets_with_checksums() {
    let config = GenConfig {
        countries: CountrySelection::Codes(vec!["FSM"]),
        scale: 2_000,
        dud_fraction: 0.0,
        ..GenConfig::default()
    };
    let mut internet = generate(&config);
    let scanner_node = internet.fixtures.scanner;
    internet.sim.tap(scanner_node);
    let _ = scanner::run_scan(
        &mut internet.sim,
        scanner_node,
        ScanConfig::new(internet.targets.clone()),
    );
    let pcap = internet.sim.take_capture(scanner_node).unwrap();
    let records = netsim::pcap::read_pcap(&pcap).unwrap();
    assert!(!records.is_empty());
    let mut timestamps_sorted = true;
    let mut last = netsim::SimTime::ZERO;
    for rec in &records {
        // Every frame decodes with valid IPv4 + UDP checksums.
        let decoded = netsim::wire::decode(&rec.data).expect("valid wire bytes");
        if let netsim::wire::DecodedPacket::Udp(d) = decoded {
            assert!(!d.payload.is_empty());
        }
        if rec.ts < last {
            timestamps_sorted = false;
        }
        last = rec.ts;
    }
    assert!(timestamps_sorted, "capture timestamps must be monotone");
}
