//! Shard-count invariance of the DNSRoute++ sweep — the mirror of
//! `sharded_census_determinism.rs` for the trace pipeline.
//!
//! The sharded sweep's contract: partitioning the synthetic Internet into
//! K shard worlds changes wall-clock behavior only. Per-target traces,
//! the sanitization tally, the Figure 6 per-project path-length
//! distributions, and the AS-relationship inference are identical for
//! every K — and K = 1 reproduces the classic unsharded census → trace
//! pipeline exactly, timestamps included.

use dnsroute::{run_dnsroute, DnsRouteConfig, TraceResult};
use inetgen::GenConfig;
use scanner::{ClassifierConfig, OdnsClass};
use std::collections::BTreeSet;
use std::net::Ipv4Addr;

fn census_counts(census: &analysis::Census) -> (usize, usize, usize, usize) {
    (
        census.odns_total(),
        census.count(OdnsClass::TransparentForwarder),
        census.count(OdnsClass::RecursiveForwarder),
        census.count(OdnsClass::RecursiveResolver),
    )
}

/// A trace's timing-free content. Simulated clocks differ across shard
/// compositions (stagger position, cache warm-up), so `DnsEndpoint.at`
/// is the one field a K-sweep may legitimately change; everything the
/// figures consume must not.
type TraceKey = (
    Ipv4Addr,
    Vec<Option<Ipv4Addr>>,
    Option<u8>,
    Option<(u8, Ipv4Addr)>,
);

fn trace_key(t: &TraceResult) -> TraceKey {
    (
        t.target,
        t.hops.clone(),
        t.target_seen_at,
        t.dns.as_ref().map(|d| (d.ttl, d.src)),
    )
}

fn sorted_keys(traces: &[TraceResult]) -> Vec<TraceKey> {
    let mut keys: Vec<TraceKey> = traces.iter().map(trace_key).collect();
    keys.sort();
    keys
}

#[test]
fn k1_sweep_reproduces_unsharded_pipeline_bit_for_bit() {
    let config = GenConfig::test_small();

    // The classic pipeline: generate → census → trace in the same sim.
    let mut internet = inetgen::generate(&config);
    let census = analysis::run_census(&mut internet, &ClassifierConfig::default());
    let targets = census.transparent_targets();
    assert!(!targets.is_empty(), "world must contain forwarders");
    let traces = run_dnsroute(
        &mut internet.sim,
        internet.fixtures.scanner,
        DnsRouteConfig::new(targets),
    );

    let sweep = analysis::run_dnsroute_sharded(&config, 1, &ClassifierConfig::default());
    assert_eq!(census_counts(&sweep.census), census_counts(&census));
    // Full equality including timestamps: K = 1 is the same event
    // sequence, not merely the same distributions.
    assert_eq!(sweep.traces, traces);
}

#[test]
fn figure6_and_asrel_invariant_across_shard_counts() {
    let config = GenConfig::test_small();
    let baseline = analysis::run_dnsroute_sharded(&config, 1, &ClassifierConfig::default());
    let (base_paths, base_stats) = baseline.sanitized();
    assert!(base_stats.kept > 0, "sweep must keep sanitized paths");
    let (base_fig6, base_other) = baseline.figure6();
    assert!(!base_fig6.is_empty(), "projects must appear in Figure 6");
    let empty = BTreeSet::new();
    let (base_report, _, _) = analysis::as_relationship_report(&base_paths, &baseline.geo, &empty);

    for k in [2u32, 8] {
        let sweep = analysis::run_dnsroute_sharded(&config, k, &ClassifierConfig::default());
        assert_eq!(
            census_counts(&sweep.census),
            census_counts(&baseline.census),
            "census counts diverged at K={k}"
        );
        assert_eq!(
            sorted_keys(&sweep.traces),
            sorted_keys(&baseline.traces),
            "per-target trace content diverged at K={k}"
        );
        let (paths, stats) = sweep.sanitized();
        assert_eq!(stats, base_stats, "sanitization tally diverged at K={k}");
        let (fig6, other) = sweep.figure6();
        // ProjectPaths holds *sorted* hop counts: bit-identical per
        // project means bit-identical Figure 6 distributions.
        assert_eq!(fig6, base_fig6, "Figure 6 distributions diverged at K={k}");
        assert_eq!(other.len(), base_other.len());

        let (report, _, _) = analysis::as_relationship_report(&paths, &sweep.geo, &empty);
        assert_eq!(report.usable_paths, base_report.usable_paths, "K={k}");
        assert_eq!(report.matching_paths, base_report.matching_paths, "K={k}");
        assert_eq!(report.inferred, base_report.inferred, "K={k}");
    }
}
