//! Shard-count invariance of the census.
//!
//! The sharded engine's contract: partitioning the synthetic Internet
//! into K shards changes wall-clock behavior only — the classification
//! counts coming out of the merged offline correlation pass are identical
//! for every K, and identical to the classic single-simulator path.

use inetgen::{CountrySelection, GenConfig};
use scanner::{ClassifierConfig, OdnsClass};

/// The classification counts that must be invariant under sharding. The
/// raw probe count is *not* included: unresponsive dud targets are a
/// per-shard `floor(hosts · dud_fraction)` and flooring per shard may
/// yield one or two fewer duds than flooring once — duds never classify,
/// so every count below is untouched.
fn counts(census: &analysis::Census) -> (usize, usize, usize, usize) {
    (
        census.odns_total(),
        census.count(OdnsClass::TransparentForwarder),
        census.count(OdnsClass::RecursiveForwarder),
        census.count(OdnsClass::RecursiveResolver),
    )
}

#[test]
fn shard_counts_match_single_simulator_path() {
    let config = GenConfig::test_small();
    let mut internet = inetgen::generate(&config);
    let single = analysis::run_census(&mut internet, &ClassifierConfig::default());
    let baseline = counts(&single);
    assert!(baseline.1 > 0, "world must contain transparent forwarders");

    for k in [1u32, 2, 8] {
        let sharded = analysis::run_census_sharded(&config, k, &ClassifierConfig::default());
        assert_eq!(
            counts(&sharded),
            baseline,
            "classification counts diverged at K={k}"
        );
    }
}

#[test]
fn sharding_preserves_per_country_attribution() {
    // Beyond global counts: the merged geo database must attribute every
    // classified row to the same country the single path does.
    let config = GenConfig {
        countries: CountrySelection::Codes(vec!["BRA", "TUR", "MUS", "FSM", "AFG"]),
        scale: 2_500,
        dud_fraction: 0.05,
        ..GenConfig::default()
    };
    let mut internet = inetgen::generate(&config);
    let single = analysis::run_census(&mut internet, &ClassifierConfig::default());
    let sharded = analysis::run_census_sharded(&config, 3, &ClassifierConfig::default());

    let per_country = |census: &analysis::Census| -> std::collections::BTreeMap<&str, usize> {
        let mut m = std::collections::BTreeMap::new();
        for row in census.of_class(OdnsClass::TransparentForwarder) {
            *m.entry(row.country.unwrap_or("?")).or_insert(0) += 1;
        }
        m
    };
    assert_eq!(per_country(&single), per_country(&sharded));
}

#[test]
fn shard_worlds_probe_disjoint_population_targets() {
    // The partition really is disjoint: no planted address appears in two
    // shards, and the union covers the unsharded world exactly.
    let config = GenConfig::test_small();
    let shards = inetgen::generate_partition(&config, 4);
    let mut seen = std::collections::HashSet::new();
    for world in &shards {
        for host in &world.truth.hosts {
            assert!(
                seen.insert(host.ip),
                "address {} planted in two shards",
                host.ip
            );
        }
    }
    let solo = inetgen::generate(&config);
    let solo_ips: std::collections::HashSet<_> = solo.truth.hosts.iter().map(|h| h.ip).collect();
    assert_eq!(
        seen, solo_ips,
        "shard union must equal the unsharded population"
    );
}

#[test]
fn quick_census_sharded_matches_quick_census() {
    let base = transparent_forwarders::quick_census(2_000);
    for k in [1u32, 2, 8] {
        assert_eq!(
            transparent_forwarders::quick_census_sharded(2_000, k),
            base,
            "K={k}"
        );
    }
}
