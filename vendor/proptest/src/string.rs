//! String strategies from simple regex-like patterns.
//!
//! `&'static str` implements [`Strategy`] (producing `String`), matching
//! proptest's regex-string support for the pattern subset this workspace
//! uses: literal characters, `\`-escapes, character classes with ranges
//! (`[a-z0-9_]`), and `{m}` / `{m,n}` / `?` / `*` / `+` quantifiers.

use crate::strategy::Strategy;
use crate::TestRng;

#[derive(Debug, Clone)]
enum Atom {
    Literal(char),
    Class(Vec<(char, char)>), // inclusive ranges
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Vec<(char, char)> {
    let mut ranges = Vec::new();
    loop {
        let c = chars.next().expect("unterminated character class");
        if c == ']' {
            break;
        }
        let lo = if c == '\\' {
            chars.next().expect("dangling escape in class")
        } else {
            c
        };
        if chars.peek() == Some(&'-') {
            chars.next();
            match chars.peek() {
                Some(&']') | None => {
                    // Trailing '-' is a literal.
                    ranges.push((lo, lo));
                    ranges.push(('-', '-'));
                }
                Some(&hi) => {
                    chars.next();
                    let hi = if hi == '\\' {
                        chars.next().expect("dangling escape in class")
                    } else {
                        hi
                    };
                    assert!(lo <= hi, "descending class range");
                    ranges.push((lo, hi));
                }
            }
        } else {
            ranges.push((lo, lo));
        }
    }
    assert!(!ranges.is_empty(), "empty character class");
    ranges
}

fn parse_quantifier(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> (usize, usize) {
    match chars.peek() {
        Some('{') => {
            chars.next();
            let mut body = String::new();
            for c in chars.by_ref() {
                if c == '}' {
                    break;
                }
                body.push(c);
            }
            if let Some((m, n)) = body.split_once(',') {
                let m: usize = m.trim().parse().expect("bad {m,n} quantifier");
                let n: usize = n.trim().parse().expect("bad {m,n} quantifier");
                assert!(m <= n, "descending quantifier");
                (m, n)
            } else {
                let m: usize = body.trim().parse().expect("bad {m} quantifier");
                (m, m)
            }
        }
        Some('?') => {
            chars.next();
            (0, 1)
        }
        Some('*') => {
            chars.next();
            (0, 8)
        }
        Some('+') => {
            chars.next();
            (1, 8)
        }
        _ => (1, 1),
    }
}

fn parse(pattern: &str) -> Vec<Piece> {
    let mut chars = pattern.chars().peekable();
    let mut pieces = Vec::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '[' => Atom::Class(parse_class(&mut chars)),
            '\\' => Atom::Literal(chars.next().expect("dangling escape")),
            '.' => Atom::Class(vec![('a', 'z'), ('A', 'Z'), ('0', '9')]),
            other => Atom::Literal(other),
        };
        let (min, max) = parse_quantifier(&mut chars);
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let pieces = parse(self);
        let mut out = String::new();
        for p in &pieces {
            let count = rng.usize_inclusive(p.min, p.max);
            for _ in 0..count {
                match &p.atom {
                    Atom::Literal(c) => out.push(*c),
                    Atom::Class(ranges) => {
                        let total: u32 = ranges
                            .iter()
                            .map(|(lo, hi)| *hi as u32 - *lo as u32 + 1)
                            .sum();
                        let mut draw = (rng.next_u64() % u64::from(total)) as u32;
                        for (lo, hi) in ranges {
                            let span = *hi as u32 - *lo as u32 + 1;
                            if draw < span {
                                out.push(char::from_u32(*lo as u32 + draw).expect("valid char"));
                                break;
                            }
                            draw -= span;
                        }
                    }
                }
            }
        }
        out
    }
}
