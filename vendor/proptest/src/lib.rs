//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest 1.x API this workspace uses:
//! the [`proptest!`] macro, [`Strategy`] with `prop_map` /
//! `prop_filter_map` / `prop_flat_map` / `prop_filter`, [`any`], [`Just`],
//! [`prop_oneof!`], [`collection`] (`vec`, `btree_set`), [`option::of`],
//! string-pattern strategies for simple character-class regexes, and the
//! `prop_assert*` macros.
//!
//! Differences from real proptest: no shrinking (a failing case reports
//! its inputs and seed instead), and case generation is deterministic per
//! test name — rerunning a failed test replays the identical cases.

#![forbid(unsafe_code)]

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

pub mod collection;
pub mod option;
pub mod strategy;
pub mod string;

/// Everything a test file needs.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        ProptestConfig, TestCaseError,
    };
}

pub use strategy::{BoxedStrategy, Just, Strategy};

/// The RNG driving case generation.
#[derive(Debug, Clone)]
pub struct TestRng(SmallRng);

impl TestRng {
    /// Deterministic per (test-name, case-index) stream.
    pub fn for_case(test_name: &str, case: u64) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(SmallRng::seed_from_u64(
            h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ))
    }

    /// Uniform u64.
    pub fn next_u64(&mut self) -> u64 {
        self.0.gen_range(0u64..=u64::MAX)
    }

    /// Uniform index in `[0, bound)`. `bound` must be nonzero.
    pub fn index(&mut self, bound: usize) -> usize {
        self.0.gen_range(0..bound)
    }

    /// Uniform in `[lo, hi]`.
    pub fn usize_inclusive(&mut self, lo: usize, hi: usize) -> usize {
        self.0.gen_range(lo..=hi)
    }

    /// Fair coin.
    pub fn coin(&mut self) -> bool {
        self.0.gen_bool(0.5)
    }
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A failed (or rejected) test case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    /// Human-readable failure description.
    pub message: String,
}

impl TestCaseError {
    /// An assertion failure.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }

    /// An input rejection (treated like failure in this stand-in).
    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Types with a canonical strategy, used via [`any`].
pub trait Arbitrary: Sized + Debug {
    /// Generate one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.coin()
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

/// Strategy wrapper produced by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

// ---- Ranges are strategies -------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy range is empty");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let draw = (rng.next_u64() as u128) % span;
                self.start.wrapping_add(draw as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "strategy range is empty");
                let span = (end as u128).wrapping_sub(start as u128).wrapping_add(1);
                let draw = (rng.next_u64() as u128) % span;
                start.wrapping_add(draw as $t)
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// ---- Tuples of strategies --------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

// ---- Macros ----------------------------------------------------------------

/// Assert inside a proptest body; failure aborts only the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion with value reporting.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), l, r
            )));
        }
    }};
}

/// Inequality assertion with value reporting.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left), stringify!($right), l
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  both: {:?}",
                format!($($fmt)+), l
            )));
        }
    }};
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// The test-definition macro. Parses an optional
/// `#![proptest_config(...)]` header followed by `#[test] fn` items whose
/// arguments are `pattern in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal muncher for [`proptest!`]. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = ($config:expr);) => {};
    (config = ($config:expr);
     $(#[$attr:meta])*
     fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let test_name = concat!(module_path!(), "::", stringify!($name));
            for case in 0..u64::from(config.cases) {
                let mut rng = $crate::TestRng::for_case(test_name, case);
                let mut inputs: Vec<String> = Vec::new();
                $(
                    let value = $crate::Strategy::generate(&($strategy), &mut rng);
                    inputs.push(format!("{} = {:?}", stringify!($arg), &value));
                    let $arg = value;
                )+
                let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                    (move || -> ::core::result::Result<(), $crate::TestCaseError> {
                        { $body }
                        #[allow(unreachable_code)]
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest case {}/{} failed: {}\ninputs:\n  {}",
                        case + 1,
                        config.cases,
                        e,
                        inputs.join("\n  ")
                    );
                }
            }
        }
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;

    #[test]
    fn deterministic_generation() {
        let s = crate::collection::vec(0u32..100, 3..10);
        let mut a = crate::TestRng::for_case("x", 1);
        let mut b = crate::TestRng::for_case("x", 1);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }

    #[test]
    fn union_picks_every_arm() {
        let u = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = crate::TestRng::for_case("arms", 0);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(u.generate(&mut rng));
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn string_pattern_generates_matching() {
        let s: &str = "[a-z]{1,10}\\.[a-z]{1,6}";
        let mut rng = crate::TestRng::for_case("re", 0);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            let parts: Vec<&str> = v.split('.').collect();
            assert_eq!(parts.len(), 2, "{v}");
            assert!((1..=10).contains(&parts[0].len()), "{v}");
            assert!((1..=6).contains(&parts[1].len()), "{v}");
            assert!(v.chars().all(|c| c == '.' || c.is_ascii_lowercase()), "{v}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_smoke(x in 0u32..100, v in crate::collection::vec(any::<u8>(), 0..5)) {
            prop_assert!(x < 100);
            prop_assert!(v.len() < 5);
        }

        #[test]
        fn early_return_ok(flag in any::<bool>()) {
            if flag {
                return Ok(());
            }
            prop_assert!(!flag);
        }
    }
}
