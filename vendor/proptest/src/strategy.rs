//! The [`Strategy`] trait and its combinators.

use crate::TestRng;
use std::fmt::Debug;

/// A recipe for generating values.
///
/// Unlike real proptest there is no value tree / shrinking: `generate`
/// produces one concrete value per call.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keep only values `f` maps to `Some`, retrying otherwise.
    fn prop_filter_map<O: Debug, F: Fn(Self::Value) -> Option<O>>(
        self,
        reason: &'static str,
        f: F,
    ) -> FilterMap<Self, F>
    where
        Self: Sized,
    {
        FilterMap {
            inner: self,
            f,
            reason,
        }
    }

    /// Keep only values satisfying `f`, retrying otherwise.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            f,
            reason,
        }
    }

    /// Generate an intermediate value, then generate from the strategy it
    /// selects.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erase for heterogeneous unions ([`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// How many rejections a filtering strategy tolerates before giving up.
const MAX_FILTER_ATTEMPTS: usize = 10_000;

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    f: F,
    reason: &'static str,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        for _ in 0..MAX_FILTER_ATTEMPTS {
            if let Some(v) = (self.f)(self.inner.generate(rng)) {
                return v;
            }
        }
        panic!(
            "prop_filter_map exhausted {MAX_FILTER_ATTEMPTS} attempts: {}",
            self.reason
        );
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
    reason: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..MAX_FILTER_ATTEMPTS {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter exhausted {MAX_FILTER_ATTEMPTS} attempts: {}",
            self.reason
        );
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice among boxed strategies, built by [`crate::prop_oneof!`].
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T: Debug> Union<T> {
    /// Build from the given arms (at least one).
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.index(self.arms.len());
        self.arms[i].generate(rng)
    }
}
