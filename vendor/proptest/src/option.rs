//! `Option` strategies.

use crate::strategy::Strategy;
use crate::TestRng;

/// 50/50 `None` / `Some(inner)`.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// See [`of`].
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        if rng.coin() {
            Some(self.inner.generate(rng))
        } else {
            None
        }
    }
}
