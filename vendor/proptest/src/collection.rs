//! Collection strategies: `vec` and `btree_set`.

use crate::strategy::Strategy;
use crate::TestRng;
use std::collections::BTreeSet;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// A size specification for generated collections.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // inclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        rng.usize_inclusive(self.lo, self.hi)
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `BTreeSet<S::Value>`. `size` bounds the number of
/// insertion attempts; duplicates may make the set smaller, as in real
/// proptest.
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// See [`btree_set`].
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord + Debug,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.pick(rng);
        let mut set = BTreeSet::new();
        for _ in 0..n {
            set.insert(self.element.generate(rng));
        }
        set
    }
}
