//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no crates.io access, so this vendored crate
//! implements the subset of the criterion API the `bench` crate uses:
//! benchmark groups, `bench_function` with a [`Bencher`], throughput
//! annotation, and configurable warm-up / measurement windows. Instead of
//! criterion's statistical machinery it reports the arithmetic mean over
//! a timed measurement window — adequate for the comparative "who wins,
//! by what factor" readouts the EXPERIMENTS notes rely on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Opaque value sink preventing the optimizer from deleting benchmarked
/// work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Work-per-iteration annotation for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iterations process this many logical elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// The benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
            warm_up_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Number of timing samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Target measurement window per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up window before measurement.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Print the closing summary (no-op in this stand-in; per-benchmark
    /// lines are printed as they complete).
    pub fn final_summary(&self) {}
}

/// A named set of benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotate subsequent benchmarks with work-per-iteration.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            warm_up_time: self.criterion.warm_up_time,
            measurement_time: self.criterion.measurement_time,
            sample_size: self.criterion.sample_size,
            mean: Duration::ZERO,
            iterations: 0,
        };
        f(&mut bencher);
        let mean = bencher.mean;
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
                format!("  thrpt: {:>12.0} elem/s", n as f64 / mean.as_secs_f64())
            }
            Some(Throughput::Bytes(n)) if mean > Duration::ZERO => {
                format!("  thrpt: {:>12.0} B/s", n as f64 / mean.as_secs_f64())
            }
            _ => String::new(),
        };
        println!(
            "{}/{:<32} time: {:>12?}  ({} iters){}",
            self.name, id, mean, bencher.iterations, rate
        );
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Runs and times the measured closure.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    mean: Duration,
    iterations: u64,
}

impl Bencher {
    /// Time `f`, first warming up, then iterating until the measurement
    /// window (or the sample budget for slow bodies) is exhausted.
    // The timing shim IS the measurement primitive clippy.toml guards.
    #[allow(clippy::disallowed_methods)]
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: at least one call, until the window elapses.
        let warm_start = Instant::now();
        loop {
            black_box(f());
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        let mut total = Duration::ZERO;
        let mut n: u64 = 0;
        let measure_start = Instant::now();
        while measure_start.elapsed() < self.measurement_time
            && (n as usize) < self.sample_size * 1_000_000
        {
            let t0 = Instant::now();
            black_box(f());
            total += t0.elapsed();
            n += 1;
            // Slow bodies: stop after sample_size iterations even if the
            // window has budget left, mirroring criterion's adaptive plan.
            if (n as usize) >= self.sample_size && total >= self.measurement_time {
                break;
            }
        }
        self.mean = if n == 0 {
            Duration::ZERO
        } else {
            total / u32::try_from(n).unwrap_or(u32::MAX)
        };
        self.iterations = n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_reports_nonzero_mean() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(1));
        let mut group = c.benchmark_group("smoke");
        group.throughput(Throughput::Elements(100));
        let mut ran = 0u64;
        group.bench_function("spin", |b| {
            b.iter(|| {
                ran += 1;
                std::hint::black_box((0..1000u32).sum::<u32>())
            })
        });
        group.finish();
        assert!(ran > 0);
        c.final_summary();
    }
}
