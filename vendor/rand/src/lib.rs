//! Offline stand-in for the `rand` crate.
//!
//! The build container has no crates.io access, so this vendored crate
//! implements exactly the subset of the rand 0.8 API the workspace uses:
//! [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! methods `gen_bool` / `gen_range` over integer and `f64` ranges.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — the same
//! construction real `SmallRng` uses on 64-bit targets — so statistical
//! quality is comparable. Streams are NOT bit-compatible with crates.io
//! `rand`; all determinism guarantees in this workspace are defined
//! against this implementation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 64 uniform bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniform bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed. Same seed, same stream.
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64 — used for seeding and as a cheap stream derivator.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Bernoulli draw with probability `p` (clamped to [0, 1]).
    fn gen_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        // 53 uniform mantissa bits in [0, 1).
        let x = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        x < p
    }

    /// Uniform draw from a range (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that can produce uniform samples of `T`.
pub trait SampleRange<T> {
    /// Draw one sample.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let draw = (rng.next_u64() as u128) % span;
                self.start.wrapping_add(draw as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as u128).wrapping_sub(start as u128).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range of a 128-bit type cannot
                    // occur here (we only implement up to u64/usize).
                    return rng.next_u64() as $t;
                }
                let draw = (rng.next_u64() as u128) % span;
                start.wrapping_add(draw as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let v = self.start + unit * (self.end - self.start);
        // start + unit·span can round up to `end`; keep the half-open
        // contract (the ~2^-53 draw maps back to `start`).
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32);
        let v = self.start + unit * (self.end - self.start);
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

/// Named RNGs, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, and plenty for simulation workloads.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        fn from_state(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; SplitMix64 never
            // produces four zeros from any seed, but belt and braces:
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { s }
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self::from_state(seed)
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u32..1_000_000), b.gen_range(0u32..1_000_000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(10u32..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(5u8..=9);
            assert!((5..=9).contains(&y));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&hits), "p=0.5 gave {hits}/10000");
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.gen_range(0u64..u64::MAX) == b.gen_range(0u64..u64::MAX))
            .count();
        assert!(same < 4);
    }
}
