//! # transparent-forwarders
//!
//! A full reproduction of *Transparent Forwarders: An Unnoticed Component
//! of the Open DNS Infrastructure* (Nawrocki, Koch, Schmidt, Wählisch —
//! CoNEXT '21) as a Rust workspace:
//!
//! * [`dnswire`] — DNS wire format from scratch;
//! * [`netsim`] — deterministic discrete-event IPv4 simulator (routing,
//!   TTL/ICMP, spoofing + SAV, anycast, pcap capture, fault injection);
//! * [`odns`] — the ODNS component zoo: authoritative/root/TLD servers,
//!   recursive resolvers, recursive and transparent forwarders, public
//!   anycast resolver projects, CPE device profiles;
//! * [`scanner`] — the transactional scanner, campaign emulators
//!   (Shadowserver/Censys/Shodan), honeypot sensors, fingerprinting;
//! * [`dnsroute`] — DNSRoute++ with sanitization and AS-relationship
//!   inference;
//! * [`inetgen`] — a synthetic Internet calibrated to the paper's
//!   published aggregates;
//! * [`analysis`] — the post-processing pipeline regenerating every table
//!   and figure.
//!
//! ## Quickstart
//!
//! ```
//! use transparent_forwarders::{quick_census, quick_census_sharded};
//!
//! // A small but complete Internet-wide census (seeded, deterministic).
//! let summary = quick_census(2_000);
//! assert!(summary.transparent > 0);
//! assert!(summary.transparent_share > 0.10);
//!
//! // The same census, partitioned into 4 prefix shards driven on a
//! // worker-thread pool. Classification counts are identical for any
//! // shard count on the same seed.
//! let sharded = quick_census_sharded(2_000, 4);
//! assert_eq!(sharded, summary);
//! ```
//!
//! Sharding is how the reproduction scales: `quick_census(scale)` is
//! `quick_census_sharded(scale, 1)` by construction, and larger censuses
//! pick a shard count near the machine's core count (see the
//! `shard_scaling` bench). The same worker pool drives the §5 DNSRoute++
//! sweep — [`analysis::run_dnsroute_sharded`] scans *and* traces every
//! shard world in parallel, each shard owning its own source-port space,
//! so full-coverage forwarder tracing has no single-world wave limit.
//! See `examples/` for the full experiment walk-throughs and
//! `crates/bench/benches/` for the per-table/figure regenerations.

pub use analysis;
pub use dnsroute;
pub use dnswire;
pub use inetgen;
pub use netsim;
pub use odns;
pub use scanner;

use scanner::{ClassifierConfig, OdnsClass};

/// Headline numbers from a census run (a tiny Table 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CensusSummary {
    /// Classified ODNS components.
    pub odns_total: usize,
    /// Transparent forwarders found.
    pub transparent: usize,
    /// Recursive forwarders found.
    pub recursive_forwarders: usize,
    /// Recursive resolvers found.
    pub recursive_resolvers: usize,
    /// Transparent share of the ODNS.
    pub transparent_share: f64,
}

/// Generate a world at `scale` (1 = the paper's full 2.1 M-host
/// population; larger = smaller world), run the transactional census, and
/// summarize. Deterministic for a fixed scale.
pub fn quick_census(scale: u32) -> CensusSummary {
    let config = inetgen::GenConfig {
        scale,
        ..inetgen::GenConfig::default()
    };
    let mut internet = inetgen::generate(&config);
    summarize(&analysis::run_census(
        &mut internet,
        &ClassifierConfig::default(),
    ))
}

/// The sharded census: partition the world into `shards` disjoint prefix
/// shards, generate and scan every shard on a worker-thread pool, and
/// correlate the merged record streams offline. Produces identical
/// classification counts to [`quick_census`] at any shard count for the
/// same scale — sharding changes wall-clock time, never results.
pub fn quick_census_sharded(scale: u32, shards: u32) -> CensusSummary {
    let config = inetgen::GenConfig {
        scale,
        ..inetgen::GenConfig::default()
    };
    summarize(&analysis::run_census_sharded(
        &config,
        shards,
        &ClassifierConfig::default(),
    ))
}

fn summarize(census: &analysis::Census) -> CensusSummary {
    CensusSummary {
        odns_total: census.odns_total(),
        transparent: census.count(OdnsClass::TransparentForwarder),
        recursive_forwarders: census.count(OdnsClass::RecursiveForwarder),
        recursive_resolvers: census.count(OdnsClass::RecursiveResolver),
        transparent_share: census.share(OdnsClass::TransparentForwarder),
    }
}
